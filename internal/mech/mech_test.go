package mech

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"time"

	"griddles/internal/gns"
	"griddles/internal/simclock"
	"griddles/internal/testbed"
	"griddles/internal/vfs"
	"griddles/internal/workflow"
)

func TestHoleShapeCircle(t *testing.T) {
	c := HoleShape{A: 2, B: 2, P: 2}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{0, 0.7, math.Pi / 2, 3} {
		if r := c.Radius(theta); math.Abs(r-2) > 1e-9 {
			t.Errorf("circle radius at %g = %g", theta, r)
		}
	}
	// Perimeter approaches 2*pi*r.
	if p := c.Perimeter(10000); math.Abs(p-4*math.Pi) > 1e-3 {
		t.Errorf("perimeter = %g want %g", p, 4*math.Pi)
	}
}

func TestHoleShapeEllipseAxes(t *testing.T) {
	e := HoleShape{A: 3, B: 1, P: 2}
	x, y := e.Point(0)
	if math.Abs(x-3) > 1e-9 || math.Abs(y) > 1e-9 {
		t.Errorf("point(0) = %g,%g", x, y)
	}
	x, y = e.Point(math.Pi / 2)
	if math.Abs(x) > 1e-9 || math.Abs(y-1) > 1e-9 {
		t.Errorf("point(pi/2) = %g,%g", x, y)
	}
}

func TestShapeValidate(t *testing.T) {
	bad := []HoleShape{{A: 0, B: 1, P: 2}, {A: 1, B: -1, P: 2}, {A: 1, B: 1, P: 0.5}}
	for _, s := range bad {
		if s.Validate() == nil {
			t.Errorf("%+v accepted", s)
		}
	}
}

func TestBoundaryCurvatureOfCircle(t *testing.T) {
	c := HoleShape{A: 2, B: 2, P: 2}
	pts := c.Boundary(720)
	for _, p := range pts {
		if math.Abs(p.Curvature-0.5) > 1e-3 {
			t.Fatalf("circle curvature at theta %g = %g, want 0.5", p.Theta, p.Curvature)
		}
	}
}

func TestKirschBoundaryValues(t *testing.T) {
	const S, R = 100.0, 1.0
	// Kt = 3 at theta = pi/2 (perpendicular to the load).
	top := KirschStress(S, R, R, math.Pi/2)
	if math.Abs(top.Stt-3*S) > 1e-9 {
		t.Errorf("hoop stress at pi/2 = %g, want %g", top.Stt, 3*S)
	}
	// Compressive -S at theta = 0.
	side := KirschStress(S, R, R, 0)
	if math.Abs(side.Stt+S) > 1e-9 {
		t.Errorf("hoop stress at 0 = %g, want %g", side.Stt, -S)
	}
	// Radial and shear stress vanish on the free boundary.
	for _, theta := range []float64{0, 0.3, 1.1, math.Pi / 2} {
		b := KirschStress(S, R, R, theta)
		if math.Abs(b.Srr) > 1e-9 || math.Abs(b.Srt) > 1e-9 {
			t.Errorf("boundary not traction-free at %g: %+v", theta, b)
		}
	}
	// Inside the hole: zero.
	if (KirschStress(S, R, 0.5, 1) != Tensor{}) {
		t.Error("stress inside hole non-zero")
	}
}

func TestKirschFarField(t *testing.T) {
	const S, R = 100.0, 1.0
	far := KirschStress(S, R, 1000*R, 0.37)
	// Far away the field is uniaxial tension S along x: in polar coords
	// sigma_rr + sigma_tt = S (trace invariant) and von Mises ~ S.
	if math.Abs(far.Srr+far.Stt-S) > 0.01*S {
		t.Errorf("far-field trace = %g, want %g", far.Srr+far.Stt, S)
	}
	if vm := far.VonMises(); math.Abs(vm-S) > 0.01*S {
		t.Errorf("far-field von Mises = %g, want ~%g", vm, S)
	}
}

func TestBoundaryStressCircleMatchesKirsch(t *testing.T) {
	c := HoleShape{A: 1, B: 1, P: 2}
	pts := c.Boundary(360)
	hoop := BoundaryStress(100, c, pts)
	for i, p := range pts {
		want := 100 * (1 - 2*math.Cos(2*p.Theta))
		if math.Abs(hoop[i]-want) > 2 {
			t.Fatalf("hoop at theta %g = %g, want %g", p.Theta, hoop[i], want)
		}
	}
}

func TestEllipseOrientationMatchesInglis(t *testing.T) {
	peak := func(s HoleShape) float64 {
		pts := s.Boundary(1440)
		hoop := BoundaryStress(100, s, pts)
		m := 0.0
		for _, h := range hoop {
			if h > m {
				m = h
			}
		}
		return m
	}
	round := peak(HoleShape{A: 1, B: 1, P: 2})
	// Long axis perpendicular to the (x-direction) load: Inglis peak is
	// S(1 + 2b/a) = 7S at the sharp tips.
	hostile := peak(HoleShape{A: 1, B: 3, P: 2})
	// Long axis parallel to the load: benign, S(1 + 2b/a) = 5S/3.
	benign := peak(HoleShape{A: 3, B: 1, P: 2})
	if math.Abs(round-300) > 3 {
		t.Errorf("circle peak %g, want 300 (Kt=3)", round)
	}
	if math.Abs(hostile-700) > 15 {
		t.Errorf("perpendicular ellipse peak %g, want ~700 (Inglis)", hostile)
	}
	if math.Abs(benign-500.0/3) > 5 {
		t.Errorf("parallel ellipse peak %g, want ~166.7 (Inglis)", benign)
	}
	if !(benign < round && round < hostile) {
		t.Errorf("ordering wrong: %g %g %g", benign, round, hostile)
	}
}

func TestStressFieldAndRenderers(t *testing.T) {
	shape := HoleShape{A: 1, B: 1, P: 2}
	field := StressField(100, shape, 32, 32, 4)
	if len(field) != 32*32 {
		t.Fatalf("field len %d", len(field))
	}
	pgm := RenderPGM(field, 32, 32)
	if !strings.HasPrefix(string(pgm), "P5\n32 32\n255\n") {
		t.Errorf("pgm header: %q", pgm[:20])
	}
	if len(pgm) != len("P5\n32 32\n255\n")+32*32 {
		t.Errorf("pgm size %d", len(pgm))
	}
	ascii := RenderASCII(field, 32, 32, 8, 16)
	if lines := strings.Count(ascii, "\n"); lines != 8 {
		t.Errorf("ascii rows = %d", lines)
	}
}

func TestStressRowMatchesField(t *testing.T) {
	shape := HoleShape{A: 1.4, B: 1, P: 2.4}
	field := StressField(100, shape, 16, 16, 5)
	for row := 0; row < 16; row++ {
		got := StressRow(100, shape, 16, 16, row, 5, nil)
		for j := 0; j < 16; j++ {
			if got[j] != field[row*16+j].Stress {
				t.Fatalf("row %d col %d mismatch", row, j)
			}
		}
	}
}

func TestCyclesToFailureClosedFormVsNumeric(t *testing.T) {
	m := DefaultMaterial()
	for _, ds := range []float64{50, 100, 200} {
		closed := m.CyclesToFailure(ds)
		hist := m.GrowthHistory(ds, 4000)
		numeric := hist[len(hist)-1].N
		if math.Abs(numeric-closed)/closed > 0.01 {
			t.Errorf("dsigma %g: numeric %g vs closed %g", ds, numeric, closed)
		}
	}
}

func TestCyclesMonotonicInStress(t *testing.T) {
	m := DefaultMaterial()
	if !(m.CyclesToFailure(50) > m.CyclesToFailure(100)) {
		t.Error("higher stress should fail sooner")
	}
	if !math.IsInf(m.CyclesToFailure(0), 1) || !math.IsInf(m.CyclesToFailure(-5), 1) {
		t.Error("non-tensile range should never fail")
	}
}

func TestGrowthHistoryShape(t *testing.T) {
	m := DefaultMaterial()
	hist := m.GrowthHistory(100, 50)
	if hist[0].A != m.A0 || hist[0].N != 0 {
		t.Errorf("history start = %+v", hist[0])
	}
	last := hist[len(hist)-1]
	if math.Abs(last.A-m.AF) > 1e-12 {
		t.Errorf("history end a = %g, want %g", last.A, m.AF)
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].N < hist[i-1].N || hist[i].A < hist[i-1].A {
			t.Fatalf("history not monotone at %d", i)
		}
	}
}

func TestMaterialValidate(t *testing.T) {
	good := DefaultMaterial()
	if good.Validate() != nil {
		t.Error("default material rejected")
	}
	bad := good
	bad.AF = bad.A0
	if bad.Validate() == nil {
		t.Error("af == a0 accepted")
	}
	bad = good
	bad.C = 0
	if bad.Validate() == nil {
		t.Error("C = 0 accepted")
	}
}

func TestLife(t *testing.T) {
	min, site := Life([]float64{5, 2, 9})
	if min != 2 || site != 1 {
		t.Errorf("life = %g at %d", min, site)
	}
	min, site = Life(nil)
	if !math.IsInf(min, 1) || site != -1 {
		t.Errorf("empty life = %g at %d", min, site)
	}
}

// Property: curvature of any sampled circle is ~1/R regardless of radius.
func TestCurvatureProperty(t *testing.T) {
	f := func(rRaw uint8) bool {
		r := float64(rRaw%50) + 0.5
		c := HoleShape{A: r, B: r, P: 2}
		for _, p := range c.Boundary(360) {
			if math.Abs(p.Curvature-1/r) > 1e-2/r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// runPipeline executes the tiny durability pipeline under a coupling and
// returns the parsed result plus the report.
func runPipeline(t *testing.T, coupling workflow.Coupling, assign Assignment) (Result, *workflow.Report) {
	t.Helper()
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	params := TinyParams()
	if err := Setup(func(m string) vfs.FS { return grid.Machine(m).RawFS() }, assign, params); err != nil {
		t.Fatal(err)
	}
	runner := &workflow.Runner{Grid: grid, GNS: gns.NewStore(v)}
	var rep *workflow.Report
	v.Run(func() {
		if err := workflow.StartServices(v, grid); err != nil {
			t.Fatal(err)
		}
		var err error
		rep, err = runner.Run(PipelineSpec(params, assign), coupling)
		if err != nil {
			t.Fatalf("pipeline: %v", err)
		}
	})
	res, err := ReadResult(grid.Machine(assign.Objective).RawFS())
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	return res, rep
}

func TestPipelineEndToEndSequential(t *testing.T) {
	res, rep := runPipeline(t, workflow.CouplingSequential, AllOn("brecca"))
	if res.Life <= 0 || math.IsInf(res.Life, 1) {
		t.Errorf("life = %g", res.Life)
	}
	if res.Sites != TinyParams().BoundaryN {
		t.Errorf("sites = %d", res.Sites)
	}
	if rep.Total <= 0 {
		t.Error("no elapsed time")
	}
}

func TestPipelineSameResultUnderAllCouplings(t *testing.T) {
	// The FM's core guarantee: coupling changes rebind IO, never results.
	seq, _ := runPipeline(t, workflow.CouplingSequential, AllOn("brecca"))
	files, _ := runPipeline(t, workflow.CouplingFiles, AllOn("brecca"))
	bufs, _ := runPipeline(t, workflow.CouplingBuffers, AllOn("brecca"))
	dist, _ := runPipeline(t, workflow.CouplingBuffers, Experiment3())
	if seq != files || seq != bufs || seq != dist {
		t.Errorf("results differ across couplings:\nseq   %+v\nfiles %+v\nbufs  %+v\ndist  %+v",
			seq, files, bufs, dist)
	}
}

func TestPipelineBuffersCoScheduled(t *testing.T) {
	_, rep := runPipeline(t, workflow.CouplingBuffers, Experiment3())
	ch, _ := rep.Timing("chammy")
	ob, _ := rep.Timing("objective")
	// Buffer coupling co-schedules all five stages: the last component
	// starts essentially together with the first.
	if ob.Start > ch.Start+2*time.Second {
		t.Errorf("objective started at %v, chammy at %v: not co-scheduled", ob.Start, ch.Start)
	}
}
