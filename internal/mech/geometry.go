// Package mech implements the paper's mechanical-engineering case study
// (§5.2): the five-program durability pipeline of Figure 5 — CHAMMY,
// PAFEC, MAKE_SF_FILES, FAST and OBJECTIVE — over genuinely computed
// plate-with-hole mechanics.
//
// The physics is simplified relative to the commercial codes the paper
// used (a Kirsch/Inglis-style stress field with a curvature-based stress
// concentration instead of a full finite-element solve, and Paris-law crack
// growth for the Jones method), but each stage consumes and produces real
// numeric data with the paper's file products, so the pipeline's IO graph
// and per-stage compute/IO structure are faithful.
package mech

import (
	"fmt"
	"math"
)

// HoleShape is the parametric hole the optimization explores: a
// superellipse |x/a|^p + |y/b|^p = 1. p=2 is an ellipse; larger p tends to
// a rounded rectangle.
type HoleShape struct {
	A float64 // semi-axis along x
	B float64 // semi-axis along y
	P float64 // superellipse exponent (>= 1)
}

// Validate reports whether the shape is geometrically meaningful.
func (h HoleShape) Validate() error {
	if h.A <= 0 || h.B <= 0 {
		return fmt.Errorf("mech: non-positive semi-axes %g, %g", h.A, h.B)
	}
	if h.P < 1 {
		return fmt.Errorf("mech: superellipse exponent %g < 1", h.P)
	}
	return nil
}

// Radius reports the boundary's polar radius at angle theta.
func (h HoleShape) Radius(theta float64) float64 {
	c, s := math.Cos(theta), math.Sin(theta)
	den := math.Pow(math.Abs(c/h.A), h.P) + math.Pow(math.Abs(s/h.B), h.P)
	return math.Pow(den, -1/h.P)
}

// Point reports the boundary point at angle theta.
func (h HoleShape) Point(theta float64) (x, y float64) {
	r := h.Radius(theta)
	return r * math.Cos(theta), r * math.Sin(theta)
}

// BoundaryPoint is one sampled point of the hole profile, with the local
// curvature PAFEC needs for the stress concentration.
type BoundaryPoint struct {
	Theta     float64
	X, Y      float64
	Curvature float64 // 1/radius-of-curvature, >= 0
}

// Boundary samples n evenly spaced (in theta) boundary points with local
// curvature estimated from finite differences.
func (h HoleShape) Boundary(n int) []BoundaryPoint {
	if n < 3 {
		n = 3
	}
	pts := make([]BoundaryPoint, n)
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		x, y := h.Point(theta)
		pts[i] = BoundaryPoint{Theta: theta, X: x, Y: y}
	}
	// Curvature from the circumscribed-circle of consecutive triples.
	for i := range pts {
		p0 := pts[(i+n-1)%n]
		p1 := pts[i]
		p2 := pts[(i+1)%n]
		pts[i].Curvature = curvature(p0.X, p0.Y, p1.X, p1.Y, p2.X, p2.Y)
	}
	return pts
}

// curvature of the circle through three points (Menger curvature).
func curvature(x0, y0, x1, y1, x2, y2 float64) float64 {
	a := math.Hypot(x1-x0, y1-y0)
	b := math.Hypot(x2-x1, y2-y1)
	c := math.Hypot(x2-x0, y2-y0)
	area2 := math.Abs((x1-x0)*(y2-y0) - (x2-x0)*(y1-y0)) // 2*triangle area
	if a*b*c == 0 {
		return 0
	}
	return 2 * area2 / (a * b * c)
}

// Perimeter numerically integrates the boundary length.
func (h HoleShape) Perimeter(n int) float64 {
	if n < 8 {
		n = 8
	}
	var sum float64
	px, py := h.Point(0)
	for i := 1; i <= n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		x, y := h.Point(theta)
		sum += math.Hypot(x-px, y-py)
		px, py = x, y
	}
	return sum
}
