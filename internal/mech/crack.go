package mech

import (
	"fmt"
	"math"
)

// Material carries the Paris-law constants FAST uses (the paper's JOB.KL
// material file), in consistent units: da/dN = C * (ΔK)^M with
// ΔK = Δσ · F · sqrt(π a).
type Material struct {
	C  float64 // Paris coefficient
	M  float64 // Paris exponent
	F  float64 // geometry factor (Jones' notch correction folds in here)
	A0 float64 // initial crack length
	AF float64 // final (critical) crack length
}

// DefaultMaterial is a 7075-T6-flavoured aluminium parameter set.
func DefaultMaterial() Material {
	return Material{C: 5e-11, M: 3.0, F: 1.12, A0: 0.001, AF: 0.025}
}

// Validate reports whether the material constants are usable.
func (m Material) Validate() error {
	if m.C <= 0 || m.M <= 0 || m.F <= 0 {
		return fmt.Errorf("mech: non-positive Paris constants C=%g M=%g F=%g", m.C, m.M, m.F)
	}
	if m.A0 <= 0 || m.AF <= m.A0 {
		return fmt.Errorf("mech: bad crack lengths a0=%g af=%g", m.A0, m.AF)
	}
	return nil
}

// CyclesToFailure integrates the Paris law in closed form: the number of
// load cycles for a crack to grow from A0 to AF under stress range dsigma.
// Non-tensile ranges never fail and report +Inf.
func (m Material) CyclesToFailure(dsigma float64) float64 {
	if dsigma <= 0 {
		return math.Inf(1)
	}
	k := m.C * math.Pow(m.F*dsigma*math.Sqrt(math.Pi), m.M)
	if m.M == 2 {
		return math.Log(m.AF/m.A0) / k
	}
	e := 1 - m.M/2
	return (math.Pow(m.AF, e) - math.Pow(m.A0, e)) / (k * e)
}

// GrowthPoint is one record of a crack-growth history.
type GrowthPoint struct {
	N float64 // cumulative cycles
	A float64 // crack length
}

// GrowthHistory integrates the Paris law numerically with a fixed number of
// log-spaced crack-length steps, returning the a-vs-N curve FAST writes to
// JOB.GROWTH. The final N agrees with CyclesToFailure in the fine-step
// limit.
func (m Material) GrowthHistory(dsigma float64, steps int) []GrowthPoint {
	if steps < 2 {
		steps = 2
	}
	out := make([]GrowthPoint, 0, steps+1)
	if dsigma <= 0 {
		return append(out, GrowthPoint{N: math.Inf(1), A: m.A0})
	}
	out = append(out, GrowthPoint{N: 0, A: m.A0})
	logA0, logAF := math.Log(m.A0), math.Log(m.AF)
	n := 0.0
	prevA := m.A0
	for i := 1; i <= steps; i++ {
		a := math.Exp(logA0 + (logAF-logA0)*float64(i)/float64(steps))
		// Trapezoidal rule on dN = da / (C ΔK^M).
		rate := func(a float64) float64 {
			dk := m.F * dsigma * math.Sqrt(math.Pi*a)
			return m.C * math.Pow(dk, m.M)
		}
		dn := (a - prevA) * (1/rate(prevA) + 1/rate(a)) / 2
		n += dn
		out = append(out, GrowthPoint{N: n, A: a})
		prevA = a
	}
	return out
}

// Life is the design's figure of merit: the minimum cycles-to-failure over
// all crack sites, with the index of the critical site.
func Life(cycles []float64) (min float64, site int) {
	min = math.Inf(1)
	site = -1
	for i, c := range cycles {
		if c < min {
			min, site = c, i
		}
	}
	return min, site
}
