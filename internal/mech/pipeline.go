package mech

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"griddles/internal/vfs"
	"griddles/internal/workflow"
)

// The durability pipeline's file products (paper Figure 5).
const (
	FileJobDat    = "JOB.DAT"           // CHAMMY input: shape formula and parameters
	FileProfile   = "PROFILE_COORD.DAT" // CHAMMY -> PAFEC: hole boundary points
	FileO02       = "JOB.O02"           // PAFEC -> MAKE_SF_FILES: stress tensor field
	FileO04       = "JOB.O04"           // PAFEC -> MAKE_SF_FILES: displacement field
	FileO07       = "JOB.O07"           // PAFEC -> MAKE_SF_FILES: boundary hoop stress
	FileSF        = "JOB.SF"            // MAKE_SF_FILES -> FAST: per-site stress spectra
	File2DISP     = "JOB.2DISP"         // MAKE_SF_FILES -> FAST: equivalent-stress field
	FileTH        = "JOB.TH"            // MAKE_SF_FILES -> FAST: stress histogram
	FileKL        = "JOB.KL"            // static FAST input: material constants
	FileLife      = "JOB.LIFE"          // FAST -> OBJECTIVE: cycles per crack site
	FileGrowth    = "JOB.GROWTH"        // FAST -> OBJECTIVE: growth histories
	FileProp      = "JOB.PROP"          // FAST -> OBJECTIVE: run properties
	FileResult    = "RESULT.DAT"        // OBJECTIVE output: the design's life
	ioChunk       = 64 * 1024           // write granularity for bulk files
	tensorBytes   = 4 * 8               // srr, stt, srt, vonMises as float64
	displacoBytes = 2 * 8               // ux, uy as float64
)

// Works is the modeled CPU cost of each stage in brecca-seconds (testbed
// work units), calibrated so the all-on-jagan run lands near the paper's
// Table 2 experiment 1.
type Works struct {
	Chammy, Pafec, MakeSF, Fast, Objective float64
}

// Params sizes the pipeline's numerics and data products.
type Params struct {
	Shape          HoleShape
	Tension        float64 // remote stress range (MPa-ish)
	BoundaryN      int     // CHAMMY boundary samples = FAST crack sites
	FieldRows      int     // PAFEC grid
	FieldCols      int
	Extent         float64 // half-width of the field domain
	SpectrumLevels int     // load-spectrum levels per site in JOB.SF
	GrowthSites    int     // sites given a full numeric growth history
	GrowthSteps    int
	Material       Material
	Work           Works
}

// DefaultParams is the Table-2-calibrated configuration: data volumes give
// ~580 MB of intermediate disk traffic and the works sum to ~475 units.
func DefaultParams() Params {
	return Params{
		Shape:          HoleShape{A: 1.4, B: 1.0, P: 2.4},
		Tension:        100,
		BoundaryN:      10800,
		FieldRows:      2048,
		FieldCols:      2048,
		Extent:         6,
		SpectrumLevels: 512,
		GrowthSites:    2700,
		GrowthSteps:    128,
		Material:       DefaultMaterial(),
		Work:           Works{Chammy: 10, Pafec: 280, MakeSF: 20, Fast: 155, Objective: 10},
	}
}

// TinyParams is a fast configuration for tests and the quickstart example.
func TinyParams() Params {
	return Params{
		Shape:          HoleShape{A: 1.4, B: 1.0, P: 2.4},
		Tension:        100,
		BoundaryN:      180,
		FieldRows:      48,
		FieldCols:      48,
		Extent:         6,
		SpectrumLevels: 16,
		GrowthSites:    30,
		GrowthSteps:    16,
		Material:       DefaultMaterial(),
		Work:           Works{Chammy: 0.2, Pafec: 3, MakeSF: 0.3, Fast: 2, Objective: 0.2},
	}
}

// Assignment places each stage on a machine.
type Assignment struct {
	Chammy, Pafec, MakeSF, Fast, Objective string
}

// AllOn assigns every stage to one machine (Table 2 experiments 1 and 2).
func AllOn(machine string) Assignment {
	return Assignment{Chammy: machine, Pafec: machine, MakeSF: machine, Fast: machine, Objective: machine}
}

// Experiment3 is the paper's distributed placement for Table 2 row 3.
func Experiment3() Assignment {
	return Assignment{Chammy: "koume00", Pafec: "jagan", MakeSF: "dione", Fast: "vpac27", Objective: "freak"}
}

// Setup pre-places the static input files: JOB.DAT on CHAMMY's machine and
// JOB.KL on FAST's.
func Setup(fsFor func(machine string) vfs.FS, a Assignment, p Params) error {
	job := fmt.Sprintf("%g %g %g %d %g\n", p.Shape.A, p.Shape.B, p.Shape.P, p.BoundaryN, p.Tension)
	if err := vfs.WriteFile(fsFor(a.Chammy), FileJobDat, []byte(job)); err != nil {
		return err
	}
	m := p.Material
	kl := fmt.Sprintf("%g %g %g %g %g\n", m.C, m.M, m.F, m.A0, m.AF)
	return vfs.WriteFile(fsFor(a.Fast), FileKL, []byte(kl))
}

// PipelineSpec builds the five-component workflow of Figure 5.
func PipelineSpec(p Params, a Assignment) *workflow.Spec {
	return &workflow.Spec{
		Name: "durability",
		Components: []workflow.Component{
			{
				Name: "chammy", Machine: a.Chammy,
				Inputs:   []string{FileJobDat},
				Outputs:  []string{FileProfile},
				WorkHint: p.Work.Chammy,
				Run:      func(ctx *workflow.Ctx) error { return chammy(ctx, p) },
			},
			{
				Name: "pafec", Machine: a.Pafec,
				Inputs:   []string{FileProfile},
				Outputs:  []string{FileO02, FileO04, FileO07},
				WorkHint: p.Work.Pafec,
				Run:      func(ctx *workflow.Ctx) error { return pafec(ctx, p) },
			},
			{
				Name: "make_sf_files", Machine: a.MakeSF,
				Inputs:   []string{FileO02, FileO04, FileO07},
				Outputs:  []string{FileSF, File2DISP, FileTH},
				WorkHint: p.Work.MakeSF,
				Run:      func(ctx *workflow.Ctx) error { return makeSFFiles(ctx, p) },
			},
			{
				Name: "fast", Machine: a.Fast,
				Inputs:   []string{FileSF, File2DISP, FileTH, FileKL},
				Outputs:  []string{FileLife, FileGrowth, FileProp},
				WorkHint: p.Work.Fast,
				Run:      func(ctx *workflow.Ctx) error { return fast(ctx, p) },
			},
			{
				Name: "objective", Machine: a.Objective,
				Inputs:   []string{FileLife, FileGrowth, FileProp},
				Outputs:  []string{FileResult},
				WorkHint: p.Work.Objective,
				Run:      func(ctx *workflow.Ctx) error { return objective(ctx, p) },
			},
		},
	}
}

// chammy generates the hole boundary: Figure 5's first stage.
func chammy(ctx *workflow.Ctx, p Params) error {
	in, err := ctx.FM.Open(FileJobDat)
	if err != nil {
		return err
	}
	var shape HoleShape
	var n int
	var tension float64
	_, err = fmt.Fscan(in, &shape.A, &shape.B, &shape.P, &n, &tension)
	in.Close()
	if err != nil {
		return fmt.Errorf("chammy: parsing %s: %w", FileJobDat, err)
	}
	if err := shape.Validate(); err != nil {
		return err
	}
	ctx.Compute(p.Work.Chammy)
	pts := shape.Boundary(n)
	out, err := ctx.FM.Create(FileProfile)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(out, ioChunk)
	fmt.Fprintf(w, "%d %g %g %g %g\n", len(pts), shape.A, shape.B, shape.P, tension)
	for i, pt := range pts {
		fmt.Fprintf(w, "%d %.9g %.9g %.9g %.9g\n", i, pt.Theta, pt.X, pt.Y, pt.Curvature)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return out.Close()
}

// readProfile parses CHAMMY's output.
func readProfile(r io.Reader) (HoleShape, float64, []BoundaryPoint, error) {
	br := bufio.NewReaderSize(r, ioChunk)
	var n int
	var shape HoleShape
	var tension float64
	if _, err := fmt.Fscan(br, &n, &shape.A, &shape.B, &shape.P, &tension); err != nil {
		return shape, 0, nil, fmt.Errorf("profile header: %w", err)
	}
	pts := make([]BoundaryPoint, n)
	for i := 0; i < n; i++ {
		var idx int
		if _, err := fmt.Fscan(br, &idx, &pts[i].Theta, &pts[i].X, &pts[i].Y, &pts[i].Curvature); err != nil {
			return shape, 0, nil, fmt.Errorf("profile point %d: %w", i, err)
		}
	}
	return shape, tension, pts, nil
}

// pafec computes the stress field row by row, streaming the tensors to
// JOB.O02, displacements to JOB.O04 and the boundary hoop stresses to
// JOB.O07.
func pafec(ctx *workflow.Ctx, p Params) error {
	in, err := ctx.FM.Open(FileProfile)
	if err != nil {
		return err
	}
	shape, tension, pts, err := readProfile(in)
	in.Close()
	if err != nil {
		return err
	}

	// Boundary hoop stresses (the crack driving forces) go out first: they
	// depend only on the profile, and emitting them before the bulk field
	// lets MAKE_SF_FILES and FAST start their site work immediately — the
	// overlap the paper's distributed experiment 3 exploits.
	hoop := BoundaryStress(tension, shape, pts)
	o07, err := ctx.FM.Create(FileO07)
	if err != nil {
		return err
	}
	w07 := bufio.NewWriterSize(o07, ioChunk)
	fmt.Fprintf(w07, "%d\n", len(hoop))
	for i, h := range hoop {
		fmt.Fprintf(w07, "%d %.9g\n", i, h)
	}
	if err := w07.Flush(); err != nil {
		return err
	}
	if err := o07.Close(); err != nil {
		return err
	}

	o02, err := ctx.FM.Create(FileO02)
	if err != nil {
		return err
	}
	o04, err := ctx.FM.Create(FileO04)
	if err != nil {
		return err
	}
	w02 := bufio.NewWriterSize(o02, ioChunk)
	w04 := bufio.NewWriterSize(o04, ioChunk)

	rowBuf := make([]Tensor, p.FieldCols)
	rec02 := make([]byte, p.FieldCols*tensorBytes)
	rec04 := make([]byte, p.FieldCols*displacoBytes)
	const youngE = 70e3
	for row := 0; row < p.FieldRows; row++ {
		ctx.Compute(p.Work.Pafec / float64(p.FieldRows))
		rowBuf = StressRow(tension, shape, p.FieldRows, p.FieldCols, row, p.Extent, rowBuf)
		for j, t := range rowBuf {
			off := j * tensorBytes
			binary.LittleEndian.PutUint64(rec02[off:], math.Float64bits(t.Srr))
			binary.LittleEndian.PutUint64(rec02[off+8:], math.Float64bits(t.Stt))
			binary.LittleEndian.PutUint64(rec02[off+16:], math.Float64bits(t.Srt))
			binary.LittleEndian.PutUint64(rec02[off+24:], math.Float64bits(t.VonMises()))
			doff := j * displacoBytes
			binary.LittleEndian.PutUint64(rec04[doff:], math.Float64bits(t.Srr/youngE))
			binary.LittleEndian.PutUint64(rec04[doff+8:], math.Float64bits(t.Stt/youngE))
		}
		if _, err := w02.Write(rec02); err != nil {
			return err
		}
		if _, err := w04.Write(rec04); err != nil {
			return err
		}
	}
	if err := w02.Flush(); err != nil {
		return err
	}
	if err := o02.Close(); err != nil {
		return err
	}
	if err := w04.Flush(); err != nil {
		return err
	}
	return o04.Close()
}

// makeSFFiles turns PAFEC's raw fields into FAST's inputs: per-site load
// spectra (JOB.SF), the equivalent-stress field (JOB.2DISP) and a stress
// histogram (JOB.TH).
func makeSFFiles(ctx *workflow.Ctx, p Params) error {
	// Boundary stresses drive the spectra.
	o07, err := ctx.FM.Open(FileO07)
	if err != nil {
		return err
	}
	br := bufio.NewReaderSize(o07, ioChunk)
	var nSites int
	if _, err := fmt.Fscan(br, &nSites); err != nil {
		return fmt.Errorf("make_sf_files: %s header: %w", FileO07, err)
	}
	hoop := make([]float64, nSites)
	for i := 0; i < nSites; i++ {
		var idx int
		if _, err := fmt.Fscan(br, &idx, &hoop[i]); err != nil {
			return fmt.Errorf("make_sf_files: %s site %d: %w", FileO07, i, err)
		}
	}
	o07.Close()

	// JOB.SF first: the spectra depend only on the boundary stresses, so
	// FAST can start consuming sites while the bulk field still streams.
	sf, err := ctx.FM.Create(FileSF)
	if err != nil {
		return err
	}
	wsf := bufio.NewWriterSize(sf, ioChunk)
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr, uint64(nSites))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(p.SpectrumLevels))
	if _, err := wsf.Write(hdr); err != nil {
		return err
	}
	level := make([]byte, p.SpectrumLevels*8)
	for i := 0; i < nSites; i++ {
		for l := 0; l < p.SpectrumLevels; l++ {
			// A deterministic gust-spectrum shape on top of the site stress.
			frac := 0.6 + 0.4*math.Sin(float64(l)*math.Pi/float64(p.SpectrumLevels))
			binary.LittleEndian.PutUint64(level[l*8:], math.Float64bits(hoop[i]*frac))
		}
		if _, err := wsf.Write(level); err != nil {
			return err
		}
	}
	if err := wsf.Flush(); err != nil {
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}

	// Stream O02 through: fold the tensor field into the equivalent-stress
	// field (2DISP) and a histogram (TH); O04 is validated and drained.
	o02, err := ctx.FM.Open(FileO02)
	if err != nil {
		return err
	}
	d2, err := ctx.FM.Create(File2DISP)
	if err != nil {
		return err
	}
	w2 := bufio.NewWriterSize(d2, ioChunk)
	const bins = 64
	hist := make([]int64, bins)
	maxVM := 3.2 * p.Tension
	rec := make([]byte, p.FieldCols*tensorBytes)
	out := make([]byte, p.FieldCols*8)
	r02 := bufio.NewReaderSize(o02, ioChunk)
	for row := 0; row < p.FieldRows; row++ {
		ctx.Compute(p.Work.MakeSF / float64(p.FieldRows))
		if _, err := io.ReadFull(r02, rec); err != nil {
			return fmt.Errorf("make_sf_files: %s row %d: %w", FileO02, row, err)
		}
		for j := 0; j < p.FieldCols; j++ {
			vm := math.Float64frombits(binary.LittleEndian.Uint64(rec[j*tensorBytes+24:]))
			binary.LittleEndian.PutUint64(out[j*8:], math.Float64bits(vm))
			b := int(vm / maxVM * bins)
			if b >= bins {
				b = bins - 1
			}
			if b < 0 {
				b = 0
			}
			hist[b]++
		}
		if _, err := w2.Write(out); err != nil {
			return err
		}
	}
	o02.Close()
	if err := w2.Flush(); err != nil {
		return err
	}
	if err := d2.Close(); err != nil {
		return err
	}

	// Drain O04 (consumed for completeness; its volume matters to the IO
	// experiments even though the spectra don't need displacements).
	o04, err := ctx.FM.Open(FileO04)
	if err != nil {
		return err
	}
	if _, err := io.Copy(io.Discard, bufio.NewReaderSize(o04, ioChunk)); err != nil {
		return err
	}
	o04.Close()

	// JOB.TH: the histogram, ASCII.
	th, err := ctx.FM.Create(FileTH)
	if err != nil {
		return err
	}
	wth := bufio.NewWriterSize(th, ioChunk)
	fmt.Fprintf(wth, "%d %g\n", bins, maxVM)
	for b, c := range hist {
		fmt.Fprintf(wth, "%d %d\n", b, c)
	}
	if err := wth.Flush(); err != nil {
		return err
	}
	return th.Close()
}

// fast integrates crack growth at every boundary site.
func fast(ctx *workflow.Ctx, p Params) error {
	klf, err := ctx.FM.Open(FileKL)
	if err != nil {
		return err
	}
	var mat Material
	if _, err := fmt.Fscan(klf, &mat.C, &mat.M, &mat.F, &mat.A0, &mat.AF); err != nil {
		return fmt.Errorf("fast: parsing %s: %w", FileKL, err)
	}
	klf.Close()
	if err := mat.Validate(); err != nil {
		return err
	}

	sf, err := ctx.FM.Open(FileSF)
	if err != nil {
		return err
	}
	rsf := bufio.NewReaderSize(sf, ioChunk)
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(rsf, hdr); err != nil {
		return fmt.Errorf("fast: %s header: %w", FileSF, err)
	}
	nSites := int(binary.LittleEndian.Uint64(hdr))
	levels := int(binary.LittleEndian.Uint64(hdr[8:]))

	growth, err := ctx.FM.Create(FileGrowth)
	if err != nil {
		return err
	}
	wg := bufio.NewWriterSize(growth, ioChunk)
	lifef, err := ctx.FM.Create(FileLife)
	if err != nil {
		return err
	}
	wl := bufio.NewWriterSize(lifef, ioChunk)

	fmt.Fprintf(wl, "%d\n", nSites)
	level := make([]byte, levels*8)
	minLife := math.Inf(1)
	growthEvery := 1
	if p.GrowthSites > 0 && nSites > p.GrowthSites {
		growthEvery = nSites / p.GrowthSites
	}
	ghdr := make([]byte, 16)
	for i := 0; i < nSites; i++ {
		ctx.Compute(p.Work.Fast / float64(nSites))
		if _, err := io.ReadFull(rsf, level); err != nil {
			return fmt.Errorf("fast: %s site %d: %w", FileSF, i, err)
		}
		// Equivalent stress range: RMS of the tensile part of the spectrum.
		var sumsq float64
		cnt := 0
		for l := 0; l < levels; l++ {
			v := math.Float64frombits(binary.LittleEndian.Uint64(level[l*8:]))
			if v > 0 {
				sumsq += v * v
				cnt++
			}
		}
		dsigma := 0.0
		if cnt > 0 {
			dsigma = math.Sqrt(sumsq / float64(cnt))
		}
		cycles := mat.CyclesToFailure(dsigma)
		if cycles < minLife {
			minLife = cycles
		}
		fmt.Fprintf(wl, "%d %.9g\n", i, cycles)
		if i%growthEvery == 0 {
			hist := mat.GrowthHistory(dsigma, p.GrowthSteps)
			binary.LittleEndian.PutUint64(ghdr, uint64(i))
			binary.LittleEndian.PutUint64(ghdr[8:], uint64(len(hist)))
			if _, err := wg.Write(ghdr); err != nil {
				return err
			}
			rec := make([]byte, 16)
			for _, gp := range hist {
				binary.LittleEndian.PutUint64(rec, math.Float64bits(gp.N))
				binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(gp.A))
				if _, err := wg.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	sf.Close()
	if err := wl.Flush(); err != nil {
		return err
	}
	if err := lifef.Close(); err != nil {
		return err
	}
	if err := wg.Flush(); err != nil {
		return err
	}
	if err := growth.Close(); err != nil {
		return err
	}

	// Drain the remaining inputs (2DISP dominates the traffic) and write
	// the run summary.
	for _, name := range []string{File2DISP, FileTH} {
		f, err := ctx.FM.Open(name)
		if err != nil {
			return err
		}
		if _, err := io.Copy(io.Discard, bufio.NewReaderSize(f, ioChunk)); err != nil {
			return err
		}
		f.Close()
	}
	prop, err := ctx.FM.Create(FileProp)
	if err != nil {
		return err
	}
	fmt.Fprintf(prop, "sites %d levels %d minLife %.9g\n", nSites, levels, minLife)
	return prop.Close()
}

// objective reduces FAST's outputs to the design's life (RESULT.DAT).
func objective(ctx *workflow.Ctx, p Params) error {
	lf, err := ctx.FM.Open(FileLife)
	if err != nil {
		return err
	}
	rl := bufio.NewReaderSize(lf, ioChunk)
	var nSites int
	if _, err := fmt.Fscan(rl, &nSites); err != nil {
		return fmt.Errorf("objective: %s header: %w", FileLife, err)
	}
	lives := make([]float64, nSites)
	for i := 0; i < nSites; i++ {
		var idx int
		if _, err := fmt.Fscan(rl, &idx, &lives[i]); err != nil {
			return fmt.Errorf("objective: %s site %d: %w", FileLife, i, err)
		}
	}
	lf.Close()
	ctx.Compute(p.Work.Objective)

	// Drain the growth histories and summary.
	for _, name := range []string{FileGrowth, FileProp} {
		f, err := ctx.FM.Open(name)
		if err != nil {
			return err
		}
		if _, err := io.Copy(io.Discard, bufio.NewReaderSize(f, ioChunk)); err != nil {
			return err
		}
		f.Close()
	}

	life, site := Life(lives)
	out, err := ctx.FM.Create(FileResult)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "LIFE %.9g CYCLES AT SITE %d OF %d\n", life, site, nSites)
	return out.Close()
}

// Result is the parsed RESULT.DAT.
type Result struct {
	Life  float64
	Site  int
	Sites int
}

// ReadResult parses RESULT.DAT from a file system.
func ReadResult(fsys vfs.FS) (Result, error) {
	data, err := vfs.ReadFile(fsys, FileResult)
	if err != nil {
		return Result{}, err
	}
	var r Result
	if _, err := fmt.Sscanf(string(data), "LIFE %g CYCLES AT SITE %d OF %d", &r.Life, &r.Site, &r.Sites); err != nil {
		return Result{}, fmt.Errorf("mech: parsing %s: %w", FileResult, err)
	}
	return r, nil
}
