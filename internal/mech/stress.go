package mech

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a 2D stress state.
type Tensor struct {
	Srr, Stt, Srt float64
}

// VonMises reports the von Mises equivalent stress for the plane-stress
// tensor.
func (t Tensor) VonMises() float64 {
	return math.Sqrt(t.Srr*t.Srr - t.Srr*t.Stt + t.Stt*t.Stt + 3*t.Srt*t.Srt)
}

// KirschStress evaluates the classical Kirsch solution for an infinite
// plate with a circular hole of radius R under remote uniaxial tension S
// along x, in polar coordinates (r, theta). For r < R it returns the zero
// tensor (inside the hole).
func KirschStress(S, R, r, theta float64) Tensor {
	if r < R {
		return Tensor{}
	}
	q2 := (R / r) * (R / r)
	q4 := q2 * q2
	c2 := math.Cos(2 * theta)
	s2 := math.Sin(2 * theta)
	return Tensor{
		Srr: S/2*(1-q2) + S/2*(1-4*q2+3*q4)*c2,
		Stt: S/2*(1+q2) - S/2*(1+3*q4)*c2,
		Srt: -S / 2 * (1 + 2*q2 - 3*q4) * s2,
	}
}

// BoundaryStress evaluates the hoop stress along the hole boundary. For a
// circular hole it is the exact Kirsch boundary value S(1 - 2cos2θ); for
// other shapes the concentration is corrected with the local radius of
// curvature in the Inglis/Peterson style, Kt ≈ 1 + 2·sqrt(b/ρ), applied at
// the points where the circular solution peaks.
func BoundaryStress(S float64, shape HoleShape, pts []BoundaryPoint) []float64 {
	out := make([]float64, len(pts))
	refCurv := 1.0 / shape.B // curvature of the b-circle at the peak points
	for i, p := range pts {
		base := S * (1 - 2*math.Cos(2*p.Theta))
		// Scale the tensile peaks by the sharpness of the actual profile
		// relative to a circle of radius B.
		if base > 0 && p.Curvature > 0 && refCurv > 0 {
			kt := (1 + 2*math.Sqrt(shape.B*p.Curvature)) / 3.0
			base *= kt * (3.0 * shape.B * refCurv / (1 + 2*math.Sqrt(shape.B*refCurv)))
		}
		out[i] = base
	}
	return out
}

// FieldPoint is one sample of the stress field.
type FieldPoint struct {
	X, Y   float64
	Stress Tensor
}

// StressField samples the Kirsch-type field on a rows x cols Cartesian grid
// covering [-extent, extent]^2 around the hole, using the hole's mean
// radius as the effective circular radius. This is the field PAFEC writes
// to JOB.O02 and the data behind the paper's Figure 6 picture.
func StressField(S float64, shape HoleShape, rows, cols int, extent float64) []FieldPoint {
	if rows < 2 || cols < 2 {
		return nil
	}
	// Effective circular radius: preserve the hole area.
	rEff := math.Sqrt(shape.A * shape.B)
	out := make([]FieldPoint, 0, rows*cols)
	for i := 0; i < rows; i++ {
		y := -extent + 2*extent*float64(i)/float64(rows-1)
		for j := 0; j < cols; j++ {
			x := -extent + 2*extent*float64(j)/float64(cols-1)
			r := math.Hypot(x, y)
			theta := math.Atan2(y, x)
			out = append(out, FieldPoint{X: x, Y: y, Stress: KirschStress(S, rEff, r, theta)})
		}
	}
	return out
}

// StressRow computes one grid row of the field without materializing the
// whole field — the streaming form PAFEC uses so its output can be piped
// block-by-block into a Grid Buffer.
func StressRow(S float64, shape HoleShape, rows, cols, row int, extent float64, dst []Tensor) []Tensor {
	if cap(dst) < cols {
		dst = make([]Tensor, cols)
	}
	dst = dst[:cols]
	rEff := math.Sqrt(shape.A * shape.B)
	y := -extent + 2*extent*float64(row)/float64(rows-1)
	for j := 0; j < cols; j++ {
		x := -extent + 2*extent*float64(j)/float64(cols-1)
		dst[j] = KirschStress(S, rEff, math.Hypot(x, y), math.Atan2(y, x))
	}
	return dst
}

// RenderPGM renders the von Mises magnitude of a field as a binary PGM
// image (the Figure 6 stress-distribution picture).
func RenderPGM(field []FieldPoint, rows, cols int) []byte {
	if len(field) != rows*cols || rows == 0 {
		return nil
	}
	maxV := 0.0
	for _, p := range field {
		if v := p.Stress.VonMises(); v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "P5\n%d %d\n255\n", cols, rows)
	out := []byte(b.String())
	for _, p := range field {
		v := 0.0
		if maxV > 0 {
			v = p.Stress.VonMises() / maxV
		}
		out = append(out, byte(math.Round(v*255)))
	}
	return out
}

// RenderASCII renders the field as a coarse ASCII heat map for terminal
// output.
func RenderASCII(field []FieldPoint, rows, cols, outRows, outCols int) string {
	if len(field) != rows*cols || outRows <= 0 || outCols <= 0 {
		return ""
	}
	shades := []byte(" .:-=+*#%@")
	maxV := 0.0
	for _, p := range field {
		if v := p.Stress.VonMises(); v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for i := 0; i < outRows; i++ {
		for j := 0; j < outCols; j++ {
			si := i * rows / outRows
			sj := j * cols / outCols
			v := field[si*cols+sj].Stress.VonMises()
			idx := 0
			if maxV > 0 {
				idx = int(v / maxV * float64(len(shades)-1))
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
