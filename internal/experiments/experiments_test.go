package experiments

import (
	"strings"
	"testing"

	"griddles/internal/climate"
	"griddles/internal/mech"
)

// reducedClimate is the Table 3-5 workload at 1/8 scale: the same shape in
// an eighth of the virtual (and wall) time.
func reducedClimate() climate.Params {
	p := climate.DefaultParams()
	p.Steps /= 8
	p.Work.CCAM /= 8
	p.Work.CC2LAM /= 8
	p.Work.DARLAM /= 8
	p.ReRead = 4
	return p
}

func reducedMech() mech.Params {
	p := mech.DefaultParams()
	p.FieldRows /= 4
	p.BoundaryN /= 4
	p.GrowthSites /= 4
	p.Work = mech.Works{Chammy: 2.5, Pafec: 70, MakeSF: 5, Fast: 39, Objective: 2.5}
	return p
}

func TestTable1Render(t *testing.T) {
	tab := Table1()
	s := tab.String()
	for _, m := range []string{"dione", "jagan", "koume00", "brecca"} {
		if !strings.Contains(s, m) {
			t.Errorf("table 1 missing %s", m)
		}
	}
	if len(tab.Rows) != 7 {
		t.Errorf("table 1 rows = %d", len(tab.Rows))
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := RunTable2(reducedMech())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	exp := map[int]int64{}
	for _, r := range rows {
		exp[r.Exp] = int64(r.Total)
	}
	// Paper shape: buffers on one machine beat sequential files on the
	// same machine; distributing across faster machines beats both by a
	// large factor.
	if !(exp[2] < exp[1]) {
		t.Errorf("exp2 (%d) not faster than exp1 (%d)", exp[2], exp[1])
	}
	if !(exp[3] < exp[2]) {
		t.Errorf("exp3 (%d) not faster than exp2 (%d)", exp[3], exp[2])
	}
	if float64(exp[3]) > 0.75*float64(exp[1]) {
		t.Errorf("distribution speedup too small: exp3=%d exp1=%d", exp[3], exp[1])
	}
	_ = Table2(rows).String() // rendering must not panic
}

func TestTable3Shape(t *testing.T) {
	rows, err := RunTable3(reducedClimate(), Table3Machines)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Machine] = r
	}
	// Paper ordering: brecca < dione < freak < vpac27 ~ bouscat.
	order := SortedMachines(rows)
	if order[0] != "brecca" || order[1] != "dione" || order[2] != "freak" {
		t.Errorf("total ordering = %v", order)
	}
	// DARLAM ~ 0.47 x C-CAM on every machine.
	for _, r := range rows {
		ratio := float64(r.DARLAM) / float64(r.CCAM)
		if ratio < 0.35 || ratio > 0.60 {
			t.Errorf("%s: DARLAM/CCAM = %.2f, want ~0.47", r.Machine, ratio)
		}
	}
	// cc2lam is negligible.
	for _, r := range rows {
		if float64(r.CC2LAM) > 0.1*float64(r.Total) {
			t.Errorf("%s: cc2lam = %v of total %v", r.Machine, r.CC2LAM, r.Total)
		}
	}
	_ = Table3(rows).String()
}

func TestTable4Shape(t *testing.T) {
	// The full five-machine sweep runs in the benchmarks; the orderings are
	// asserted here on the two machines the paper's analysis hinges on —
	// brecca (buffers beat sequential) and vpac27 (they don't).
	p := reducedClimate()
	machines := []string{"brecca", "vpac27"}
	rows4, err := RunTable4(p, machines)
	if err != nil {
		t.Fatal(err)
	}
	rows3, err := RunTable3(p, machines)
	if err != nil {
		t.Fatal(err)
	}
	seq := map[string]Table3Row{}
	for _, r := range rows3 {
		seq[r.Machine] = r
	}
	for _, r := range rows4 {
		// Buffers always beat concurrent files (paper: "using buffers is
		// always faster than using files when the codes are run on the
		// same system").
		if r.Buffers[2] >= r.Files[2] {
			t.Errorf("%s: buffers (%v) not faster than files (%v)", r.Machine, r.Buffers[2], r.Files[2])
		}
		// Concurrent files are slower than sequential.
		if r.Files[2] <= seq[r.Machine].Total {
			t.Errorf("%s: concurrent files (%v) not slower than sequential (%v)", r.Machine, r.Files[2], seq[r.Machine].Total)
		}
	}
	// The crossover: buffers beat sequential on brecca but not vpac27.
	var brecca, vpac Table4Row
	for _, r := range rows4 {
		if r.Machine == "brecca" {
			brecca = r
		} else {
			vpac = r
		}
	}
	if brecca.Buffers[2] >= seq["brecca"].Total {
		t.Errorf("brecca: buffers (%v) should beat sequential (%v)", brecca.Buffers[2], seq["brecca"].Total)
	}
	if vpac.Buffers[2] <= seq["vpac27"].Total {
		t.Errorf("vpac27: buffers (%v) should lose to sequential (%v)", vpac.Buffers[2], seq["vpac27"].Total)
	}
	_ = Table4(rows4).String()
}

func TestTable5Shape(t *testing.T) {
	// One low-latency pairing and one trans-continental pairing carry the
	// paper's headline crossover; the full six run in the benchmarks.
	p := reducedClimate()
	pairs := []Pairing{{"brecca", "dione"}, {"brecca", "bouscat"}}
	rows, err := RunTable5(p, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Winner() != "buffers" {
		t.Errorf("brecca->dione (low latency): files (%v) beat buffers (%v); paper says buffers win",
			rows[0].FilesDarlam, rows[0].BufDarlam)
	}
	if rows[1].Winner() != "files" {
		t.Errorf("brecca->bouscat (high latency): buffers (%v) beat files (%v); paper says files win",
			rows[1].BufDarlam, rows[1].FilesDarlam)
	}
	// The paper's anomaly: on the high-latency pair, cc2lam's completion is
	// dragged far past C-CAM's by buffer backpressure.
	r := rows[1]
	if r.BufCC2 < r.BufCCAM+(r.BufCCAM/2) {
		t.Errorf("brecca->bouscat: cc2lam (%v) not dragged well past ccam (%v)", r.BufCC2, r.BufCCAM)
	}
	_ = Table5(rows).String()
}

func TestFigures(t *testing.T) {
	for name, dot := range map[string]string{
		"figure1": Figure1DOT(),
		"figure4": Figure4DOT(),
		"figure5": Figure5DOT(),
	} {
		if !strings.HasPrefix(dot, "digraph") || !strings.Contains(dot, "->") {
			t.Errorf("%s is not a graph:\n%s", name, dot)
		}
	}
	if !strings.Contains(Figure5DOT(), "PROFILE_COORD.DAT") {
		t.Error("figure 5 missing the pipeline files")
	}

	trace, err := Figure3Trace()
	if err != nil {
		t.Fatalf("figure 3: %v", err)
	}
	for _, want := range []string{"blocked until written", "seek back", "cache file", "EOF"} {
		if !strings.Contains(trace, want) {
			t.Errorf("figure 3 trace missing %q:\n%s", want, trace)
		}
	}

	ascii, pgm := Figure6(64, 64)
	if len(strings.Split(strings.TrimSpace(ascii), "\n")) != 24 {
		t.Errorf("figure 6 ascii rows wrong:\n%s", ascii)
	}
	if !strings.HasPrefix(string(pgm), "P5\n64 64\n255\n") {
		t.Error("figure 6 pgm header wrong")
	}
}
