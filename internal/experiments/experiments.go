// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated Table 1 testbed. cmd/benchtables and the
// top-level benchmarks drive it; EXPERIMENTS.md records paper-vs-measured
// for each cell.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"griddles/internal/climate"
	"griddles/internal/gns"
	"griddles/internal/mech"
	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/testbed"
	"griddles/internal/vfs"
	"griddles/internal/workflow"
)

// Env is one fresh experiment environment: a virtual clock, the Table 1
// grid with all services running, and a workflow runner configured the way
// the paper's prototype was (SOAP-style connection-per-call buffers).
type Env struct {
	Clock  *simclock.Virtual
	Grid   *testbed.Grid
	Runner *workflow.Runner
}

// traceSink, when set, receives the JSONL event log of every subsequently
// created Env (cmd/benchtables -trace). Envs share the writer but not the
// observer: each has its own virtual clock, so each needs its own Observer.
var traceSink io.Writer

// SetTraceSink streams every future Env's event trace to w as JSONL; nil
// turns tracing off. Not safe to change while experiments run.
func SetTraceSink(w io.Writer) { traceSink = w }

// NewEnv builds a fresh environment. Each experiment gets its own so runs
// cannot contaminate each other.
func NewEnv() *Env {
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	env := &Env{
		Clock: v,
		Grid:  grid,
		Runner: &workflow.Runner{
			Grid:        grid,
			GNS:         gns.NewStore(v),
			ConnPerCall: true,
			PollWork:    0.025,
		},
	}
	if traceSink != nil {
		env.Runner.Obs = obs.NewWith(v, obs.Config{Sink: traceSink})
	}
	return env
}

// Run executes a workflow spec under a coupling inside a fresh simulation
// and returns the report.
func (e *Env) Run(spec *workflow.Spec, coupling workflow.Coupling, setup func() error) (*workflow.Report, error) {
	var rep *workflow.Report
	var err error
	var panicked any
	func() {
		defer func() { panicked = recover() }()
		e.Clock.Run(func() {
			if serr := workflow.StartServices(e.Clock, e.Grid); serr != nil {
				err = serr
				return
			}
			if setup != nil {
				if serr := setup(); serr != nil {
					err = serr
					return
				}
			}
			rep, err = e.Runner.Run(spec, coupling)
		})
	}()
	if panicked != nil {
		return nil, fmt.Errorf("experiments: simulation aborted: %v", panicked)
	}
	return rep, err
}

// fmtD formats a duration like the paper's tables.
func fmtD(d time.Duration) string { return workflow.FormatDuration(d) }

// Row is one labelled result row with per-column durations.
type Row struct {
	Label string
	Cells []string
}

// Table is a rendered experiment table.
type Table struct {
	Title   string
	Header  []string
	Rows    []Row
	Remarks []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	label := 0
	for _, r := range t.Rows {
		if len(r.Label) > label {
			label = len(r.Label)
		}
		for i, c := range r.Cells {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(&b, "  %-*s", label, "")
	for i, h := range t.Header {
		fmt.Fprintf(&b, "  %*s", widths[i], h)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-*s", label, r.Label)
		for i, c := range r.Cells {
			w := 8
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "  %*s", w, c)
		}
		b.WriteByte('\n')
	}
	for _, r := range t.Remarks {
		fmt.Fprintf(&b, "  note: %s\n", r)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 1 — the testbed itself.

// Table1 renders the machine list.
func Table1() *Table {
	t := &Table{
		Title:  "Table 1 — Machine list (paper Table 1, with calibrated simulation parameters)",
		Header: []string{"CPU", "MHz", "MB", "Country", "speed", "disk MB/s", "mp penalty"},
	}
	for _, s := range testbed.Table1 {
		t.Rows = append(t.Rows, Row{Label: s.Name, Cells: []string{
			s.CPU, fmt.Sprint(s.MHz), fmt.Sprint(s.MemMB), s.Country,
			fmt.Sprintf("%.3f", s.SpeedFactor),
			fmt.Sprintf("%.1f", s.DiskMBps),
			fmt.Sprintf("%.2f", s.MultiprogPenalty),
		}})
	}
	return t
}

// ---------------------------------------------------------------------------
// Table 2 — the durability pipeline.

// Table2Row is one measured experiment of Table 2.
type Table2Row struct {
	Exp        int
	Assignment mech.Assignment
	Coupling   workflow.Coupling
	Total      time.Duration
	Report     *workflow.Report
}

// RunTable2 executes the paper's three Table 2 experiments.
func RunTable2(params mech.Params) ([]Table2Row, error) {
	cases := []struct {
		exp      int
		assign   mech.Assignment
		coupling workflow.Coupling
	}{
		{1, mech.AllOn("jagan"), workflow.CouplingSequential},
		{2, mech.AllOn("jagan"), workflow.CouplingBuffers},
		{3, mech.Experiment3(), workflow.CouplingBuffers},
	}
	var rows []Table2Row
	for _, c := range cases {
		env := NewEnv()
		env.Runner.BlockSize = 64 * 1024 // the engineering files move in large records
		spec := mech.PipelineSpec(params, c.assign)
		setup := func() error {
			return mech.Setup(func(m string) vfs.FS { return env.Grid.Machine(m).RawFS() }, c.assign, params)
		}
		rep, err := env.Run(spec, c.coupling, setup)
		if err != nil {
			return nil, fmt.Errorf("table 2 exp %d: %w", c.exp, err)
		}
		rows = append(rows, Table2Row{Exp: c.exp, Assignment: c.assign, Coupling: c.coupling, Total: rep.Total, Report: rep})
	}
	return rows, nil
}

// Table2 renders the Table 2 reproduction next to the paper's numbers.
func Table2(rows []Table2Row) *Table {
	paper := map[int]string{1: "01:39:17", 2: "01:29:17", 3: "00:55:11"}
	desc := map[int]string{
		1: "all on jagan, files (sequential)",
		2: "all on jagan, GridFiles (buffers)",
		3: "distributed (koume00/jagan/dione/vpac27/freak), GridFiles",
	}
	t := &Table{
		Title:  "Table 2 — Durability pipeline (paper Table 2)",
		Header: []string{"measured", "paper"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("exp %d: %s", r.Exp, desc[r.Exp]),
			Cells: []string{fmtD(r.Total), paper[r.Exp]},
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// Table 3 — sequential climate runs.

// Table3Machines are the machines the paper measured.
var Table3Machines = []string{"dione", "brecca", "freak", "bouscat", "vpac27"}

// Table3Row is one machine's sequential run.
type Table3Row struct {
	Machine                    string
	CCAM, CC2LAM, DARLAM       time.Duration // per-model durations
	Total                      time.Duration
	CCAMEnd, CC2End, DARLAMEnd time.Duration // cumulative finish offsets
}

// RunTable3 executes the sequential runs of Table 3.
func RunTable3(params climate.Params, machines []string) ([]Table3Row, error) {
	var rows []Table3Row
	for _, m := range machines {
		env := NewEnv()
		env.Runner.CacheFiles = climate.CacheFiles()
		rep, err := env.Run(climate.WorkflowSpec(params, climate.AllOn(m)), workflow.CouplingSequential, nil)
		if err != nil {
			return nil, fmt.Errorf("table 3 on %s: %w", m, err)
		}
		cc, _ := rep.Timing("ccam")
		la, _ := rep.Timing("cc2lam")
		da, _ := rep.Timing("darlam")
		rows = append(rows, Table3Row{
			Machine: m,
			CCAM:    cc.Finish - cc.Start, CC2LAM: la.Finish - la.Start, DARLAM: da.Finish - da.Start,
			Total:   rep.Total,
			CCAMEnd: cc.Finish, CC2End: la.Finish, DARLAMEnd: da.Finish,
		})
	}
	return rows, nil
}

// paperTable3 is the paper's measured data (hr:min:sec).
var paperTable3 = map[string][4]string{
	"dione":   {"00:28:21", "00:00:08", "00:13:16", "00:41:45"},
	"brecca":  {"00:16:34", "00:00:08", "00:07:46", "00:24:24"},
	"freak":   {"00:30:31", "00:00:30", "00:13:38", "00:44:39"},
	"bouscat": {"01:07:29", "00:00:12", "00:31:52", "01:39:33"},
	"vpac27":  {"01:05:22", "00:00:11", "00:31:00", "01:36:33"},
}

// Table3 renders the Table 3 reproduction.
func Table3(rows []Table3Row) *Table {
	t := &Table{
		Title:  "Table 3 — Sequential atmospheric runs (paper Table 3); paper values in parentheses",
		Header: []string{"C-CAM", "cc2lam", "DARLAM", "Total"},
	}
	for _, r := range rows {
		p := paperTable3[r.Machine]
		t.Rows = append(t.Rows, Row{Label: r.Machine, Cells: []string{
			fmt.Sprintf("%s (%s)", fmtD(r.CCAM), p[0]),
			fmt.Sprintf("%s (%s)", fmtD(r.CC2LAM), p[1]),
			fmt.Sprintf("%s (%s)", fmtD(r.DARLAM), p[2]),
			fmt.Sprintf("%s (%s)", fmtD(r.Total), p[3]),
		}})
	}
	t.Remarks = append(t.Remarks,
		"our cc2lam pays uncached disk IO for both coupling files; the paper's ran in page cache")
	return t
}

// ---------------------------------------------------------------------------
// Table 4 — concurrent same-machine runs, files vs buffers.

// Table4Row is one machine's pair of concurrent runs (cumulative finish
// offsets, as in the paper).
type Table4Row struct {
	Machine string
	Files   [3]time.Duration // ccam, cc2lam, darlam finish offsets
	Buffers [3]time.Duration
}

// RunTable4 executes the concurrent same-machine runs.
func RunTable4(params climate.Params, machines []string) ([]Table4Row, error) {
	var rows []Table4Row
	for _, m := range machines {
		row := Table4Row{Machine: m}
		for i, coupling := range []workflow.Coupling{workflow.CouplingFiles, workflow.CouplingBuffers} {
			env := NewEnv()
			env.Runner.CacheFiles = climate.CacheFiles()
			rep, err := env.Run(climate.WorkflowSpec(params, climate.AllOn(m)), coupling, nil)
			if err != nil {
				return nil, fmt.Errorf("table 4 on %s (%s): %w", m, coupling, err)
			}
			cc, _ := rep.Timing("ccam")
			la, _ := rep.Timing("cc2lam")
			da, _ := rep.Timing("darlam")
			finishes := [3]time.Duration{cc.Finish, la.Finish, da.Finish}
			if i == 0 {
				row.Files = finishes
			} else {
				row.Buffers = finishes
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// paperTable4 is the paper's measured cumulative data.
var paperTable4 = map[string][2][3]string{
	"dione":   {{"00:41:18", "00:41:56", "01:08:17"}, {"00:44:10", "00:44:15", "00:49:12"}},
	"brecca":  {{"00:18:13", "00:18:25", "00:27:58"}, {"00:20:05", "00:20:12", "00:22:57"}},
	"freak":   {{"00:34:35", "00:35:26", "00:52:39"}, {"00:35:21", "00:35:33", "00:40:30"}},
	"bouscat": {{"01:10:22", "01:10:39", "01:55:27"}, {"01:17:51", "01:18:10", "01:29:59"}},
	"vpac27":  {{"01:39:28", "01:40:24", "02:44:49"}, {"01:51:11", "01:52:05", "02:15:15"}},
}

// Table4 renders the Table 4 reproduction.
func Table4(rows []Table4Row) *Table {
	t := &Table{
		Title:  "Table 4 — Concurrent runs on one machine, cumulative finishes (paper Table 4); paper values in parentheses",
		Header: []string{"model", "files", "buffers"},
	}
	models := []string{"C-CAM", "cc2lam", "DARLAM"}
	for _, r := range rows {
		p := paperTable4[r.Machine]
		for i, model := range models {
			label := ""
			if i == 0 {
				label = r.Machine
			}
			t.Rows = append(t.Rows, Row{Label: label, Cells: []string{
				model,
				fmt.Sprintf("%s (%s)", fmtD(r.Files[i]), p[0][i]),
				fmt.Sprintf("%s (%s)", fmtD(r.Buffers[i]), p[1][i]),
			}})
		}
	}
	return t
}

// ---------------------------------------------------------------------------
// Table 5 — distributed pairs, files+copy vs buffers.

// Pairing is one (C-CAM+cc2lam machine, DARLAM machine) combination.
type Pairing struct{ Src, Dst string }

// Table5Pairings are the paper's six rows, in table order.
var Table5Pairings = []Pairing{
	{"dione", "vpac27"},
	{"brecca", "dione"},
	{"brecca", "bouscat"},
	{"dione", "brecca"},
	{"brecca", "vpac27"},
	{"brecca", "freak"},
}

// Table5Row is one pairing's measurements (cumulative offsets).
type Table5Row struct {
	Pair Pairing
	// Files: sequential with a staged copy. CCAMEnd/CC2End are the model
	// finishes, CopyEnd when the staged copy to Dst completed (folded into
	// DARLAM's start), DarlamEnd the total.
	FilesCCAM, FilesCC2, FilesCopy, FilesDarlam time.Duration
	// Buffers: co-scheduled streaming.
	BufCCAM, BufCC2, BufDarlam time.Duration
}

// RunTable5 executes the distributed pairings.
func RunTable5(params climate.Params, pairings []Pairing) ([]Table5Row, error) {
	var rows []Table5Row
	for _, pair := range pairings {
		row := Table5Row{Pair: pair}
		assign := climate.Split(pair.Src, pair.Dst)

		// Files: the paper runs the codes sequentially and copies the
		// coupling file between phases; our CouplingSequential stages the
		// copy inside DARLAM's open, so the copy time is the gap between
		// cc2lam's finish and DARLAM's first compute. We report DARLAM's
		// open-to-copy-complete boundary as FilesCopy.
		env := NewEnv()
		env.Runner.CacheFiles = climate.CacheFiles()
		rep, err := env.Run(climate.WorkflowSpec(params, assign), workflow.CouplingSequential, nil)
		if err != nil {
			return nil, fmt.Errorf("table 5 %s->%s files: %w", pair.Src, pair.Dst, err)
		}
		cc, _ := rep.Timing("ccam")
		la, _ := rep.Timing("cc2lam")
		da, _ := rep.Timing("darlam")
		row.FilesCCAM, row.FilesCC2 = cc.Finish, la.Finish
		row.FilesDarlam = da.Finish
		// DARLAM's input-open mark is when the staged cross-machine copy
		// finished (the paper's "File Copy" row).
		if m, ok := rep.Mark("darlam/input-open"); ok {
			row.FilesCopy = m
		} else {
			row.FilesCopy = da.Start
		}

		env = NewEnv()
		env.Runner.CacheFiles = climate.CacheFiles()
		rep, err = env.Run(climate.WorkflowSpec(params, assign), workflow.CouplingBuffers, nil)
		if err != nil {
			return nil, fmt.Errorf("table 5 %s->%s buffers: %w", pair.Src, pair.Dst, err)
		}
		cc, _ = rep.Timing("ccam")
		la, _ = rep.Timing("cc2lam")
		da, _ = rep.Timing("darlam")
		row.BufCCAM, row.BufCC2, row.BufDarlam = cc.Finish, la.Finish, da.Finish
		rows = append(rows, row)
	}
	return rows, nil
}

// paperTable5 is the paper's measured data, keyed by "src->dst":
// files {ccam, cc2lam, copy, darlam}, buffers {ccam, cc2lam, darlam}.
var paperTable5 = map[string][2][]string{
	"dione->vpac27":   {{"00:28:21", "00:28:29", "00:29:19", "01:00:29"}, {"00:34:20", "00:34:32", "00:48:47"}},
	"brecca->dione":   {{"00:16:34", "00:16:42", "00:17:32", "00:30:48"}, {"00:18:05", "00:18:12", "00:25:10"}},
	"brecca->bouscat": {{"00:16:34", "00:16:42", "00:24:12", "00:56:04"}, {"00:20:51", "01:05:17", "01:10:21"}},
	"dione->brecca":   {{"00:28:21", "00:28:29", "00:29:19", "00:37:05"}, {"00:35:24", "00:35:30", "00:39:24"}},
	"brecca->vpac27":  {{"00:16:34", "00:16:42", "00:16:57", "00:47:57"}, {"00:18:37", "00:18:44", "00:40:43"}},
	"brecca->freak":   {{"00:16:34", "00:16:42", "00:20:17", "00:33:55"}, {"00:18:19", "00:33:49", "00:41:45"}},
}

// Table5 renders the Table 5 reproduction.
func Table5(rows []Table5Row) *Table {
	t := &Table{
		Title:  "Table 5 — Distributed runs, cumulative finishes (paper Table 5); paper values in parentheses",
		Header: []string{"stage", "files", "buffers"},
	}
	for _, r := range rows {
		key := r.Pair.Src + "->" + r.Pair.Dst
		p := paperTable5[key]
		t.Rows = append(t.Rows,
			Row{Label: key, Cells: []string{"C-CAM",
				fmt.Sprintf("%s (%s)", fmtD(r.FilesCCAM), p[0][0]),
				fmt.Sprintf("%s (%s)", fmtD(r.BufCCAM), p[1][0])}},
			Row{Label: "", Cells: []string{"cc2lam",
				fmt.Sprintf("%s (%s)", fmtD(r.FilesCC2), p[0][1]),
				fmt.Sprintf("%s (%s)", fmtD(r.BufCC2), p[1][1])}},
			Row{Label: "", Cells: []string{"copy done",
				fmt.Sprintf("%s (%s)", fmtD(r.FilesCopy), p[0][2]), ""}},
			Row{Label: "", Cells: []string{"DARLAM",
				fmt.Sprintf("%s (%s)", fmtD(r.FilesDarlam), p[0][3]),
				fmt.Sprintf("%s (%s)", fmtD(r.BufDarlam), p[1][2])}},
		)
	}
	return t
}

// Winner reports which mode won a Table 5 row, for shape checks.
func (r Table5Row) Winner() string {
	if r.BufDarlam < r.FilesDarlam {
		return "buffers"
	}
	return "files"
}

// SortedMachines returns the Table 3 machines sorted by measured total, for
// shape assertions.
func SortedMachines(rows []Table3Row) []string {
	sorted := append([]Table3Row(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Total < sorted[j].Total })
	names := make([]string, len(sorted))
	for i, r := range sorted {
		names[i] = r.Machine
	}
	return names
}
