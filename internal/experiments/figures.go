package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"griddles/internal/gridbuffer"
	"griddles/internal/mech"
	"griddles/internal/simclock"
	"griddles/internal/simnet"
	"griddles/internal/vfs"
	"griddles/internal/workflow"
)

// Figure1DOT renders the paper's Figure 1 sample workflow — three phases on
// three machines fed by a database, an instrument and replicated files — as
// a Graphviz graph.
func Figure1DOT() string {
	spec := &workflow.Spec{
		Name: "figure1-sample-workflow",
		Components: []workflow.Component{
			{Name: "phase1", Machine: "machine1",
				Inputs:  []string{"database", "instrument-stream"},
				Outputs: []string{"phase1.out"}},
			{Name: "phase2", Machine: "machine2",
				Inputs:  []string{"phase1.out", "replicated-input"},
				Outputs: []string{"phase2a.out", "phase2b.out"}},
			{Name: "phase3", Machine: "machine3",
				Inputs:  []string{"phase2a.out", "phase2b.out"},
				Outputs: []string{"final.out"}},
		},
	}
	return spec.DOT()
}

// Figure5DOT renders the durability pipeline's file graph (paper Figure 5).
func Figure5DOT() string {
	return mech.PipelineSpec(mech.TinyParams(), mech.Experiment3()).DOT()
}

// Figure4DOT renders the GriddLeS architecture (paper Figures 2 and 4): the
// File Multiplexer's client modules and the services they talk to.
func Figure4DOT() string {
	var b strings.Builder
	b.WriteString("digraph griddles {\n  rankdir=LR;\n  node [shape=box];\n")
	b.WriteString("  app [label=\"Legacy Application\\n(read/write/seek/open/close)\", style=bold];\n")
	b.WriteString("  subgraph cluster_fm {\n    label=\"File Multiplexer\";\n")
	b.WriteString("    gnsc [label=\"GNS Client\"];\n    lfc [label=\"Local File Client\"];\n")
	b.WriteString("    rfc [label=\"Remote File Client\"];\n    gbc [label=\"Grid Buffer Client\"];\n  }\n")
	b.WriteString("  gns [label=\"GriddLeS Name Server (GNS)\", shape=cylinder];\n")
	b.WriteString("  lfs [label=\"Local File System\", shape=folder];\n")
	b.WriteString("  ftp [label=\"GridFTP Server\", shape=component];\n")
	b.WriteString("  gbs [label=\"Grid Buffer Server\", shape=component];\n")
	b.WriteString("  rc [label=\"Replica Catalogue\", shape=cylinder];\n")
	b.WriteString("  nws [label=\"Network Weather Service\", shape=cylinder];\n")
	for _, e := range []string{
		"app -> gnsc", "app -> lfc", "app -> rfc", "app -> gbc",
		"gnsc -> gns", "lfc -> lfs", "rfc -> ftp", "gbc -> gbs",
		"gnsc -> rc [style=dashed]", "gnsc -> nws [style=dashed]",
	} {
		fmt.Fprintf(&b, "  %s;\n", e)
	}
	b.WriteString("}\n")
	return b.String()
}

// Figure3Trace runs a miniature writer/reader Grid Buffer session with a
// backward seek and returns an event trace demonstrating the paper's
// Figure 3: direct socket coupling with the cache file serving re-reads.
func Figure3Trace() (string, error) {
	var b strings.Builder
	v := simclock.NewVirtualDefault()
	net := simnet.New(v)
	net.SetLinkBoth("writer", "reader", simnet.LinkSpec{Latency: 5 * time.Millisecond})
	fs := vfs.NewMemFS()
	reg := gridbuffer.NewRegistry(v, fs)
	var runErr error
	v.Run(func() {
		l, err := net.Host("reader").Listen("reader:7000")
		if err != nil {
			runErr = err
			return
		}
		v.Go("gb-serve", func() { gridbuffer.NewServer(reg, v).Serve(l) })
		logf := func(format string, args ...any) {
			fmt.Fprintf(&b, "[t=%8s] %s\n", v.Now().Sub(simclock.DefaultBase).Round(time.Millisecond), fmt.Sprintf(format, args...))
		}
		opts := gridbuffer.Options{BlockSize: 8, Cache: true}
		done := simclock.NewWaitGroup(v)
		done.Add(1)
		v.Go("reader", func() {
			defer done.Done()
			r, err := gridbuffer.NewReader(net.Host("reader"), "reader:7000", v, "blah", opts, gridbuffer.ReaderOptions{})
			if err != nil {
				runErr = err
				return
			}
			defer r.Close()
			buf := make([]byte, 8)
			for i := 0; i < 3; i++ {
				n, _ := io.ReadFull(r, buf)
				logf("reader: read block %d: %q (blocked until written)", i, buf[:n])
			}
			r.Seek(0, io.SeekStart)
			logf("reader: seek back to start")
			n, _ := io.ReadFull(r, buf)
			logf("reader: re-read block 0 from cache file: %q", buf[:n])
			rest, _ := io.ReadAll(r)
			logf("reader: drained remaining %d bytes to EOF", len(rest))
		})
		w, err := gridbuffer.NewWriter(net.Host("writer"), "reader:7000", v, "blah", opts, gridbuffer.WriterOptions{})
		if err != nil {
			runErr = err
			return
		}
		for i := 0; i < 3; i++ {
			v.Sleep(100 * time.Millisecond) // one block per simulated timestep
			block := fmt.Sprintf("step-%03d", i)
			w.Write([]byte(block))
			logf("writer: wrote block %d: %q", i, block)
		}
		w.Close()
		logf("writer: closed stream (EOF)")
		done.Wait()
	})
	if runErr != nil {
		return "", runErr
	}
	return b.String(), nil
}

// Figure6 renders the stress distribution around the default hole shape
// (paper Figure 6) as an ASCII heat map plus a binary PGM image.
func Figure6(rows, cols int) (ascii string, pgm []byte) {
	p := mech.DefaultParams()
	field := mech.StressField(p.Tension, p.Shape, rows, cols, p.Extent/2)
	return mech.RenderASCII(field, rows, cols, 24, 48), mech.RenderPGM(field, rows, cols)
}
