package objstore

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"griddles/internal/admit"
	"griddles/internal/retry"
)

// tempAcceptErr mimics an EMFILE-style transient accept failure.
type tempAcceptErr struct{}

func (tempAcceptErr) Error() string   { return "accept: resource temporarily unavailable" }
func (tempAcceptErr) Temporary() bool { return true }

// flakyListener fails its first `fails` Accepts with a temporary error.
type flakyListener struct {
	net.Listener
	fails int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.fails > 0 {
		l.fails--
		return nil, tempAcceptErr{}
	}
	return l.Listener.Accept()
}

func TestServeSurvivesFlakyAccept(t *testing.T) {
	r := newRig()
	r.store.PutBytes("k", []byte("hello"))
	r.v.Run(func() {
		l, err := r.net.Host("srv").Listen("srv:7100")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv := NewServer(r.store, r.v)
		r.v.Go("objstore-serve", func() { srv.Serve(&flakyListener{Listener: l, fails: 3}) })
		size, exists, err := r.client.Stat("k")
		if err != nil || !exists || size != 5 {
			t.Fatalf("stat through flaky listener: %d %v %v", size, exists, err)
		}
	})
}

func TestGetShedStatAdmitted(t *testing.T) {
	r := newRig()
	r.store.PutBytes("k", []byte("payload"))
	r.v.Run(func() {
		l, err := r.net.Host("srv").Listen("srv:7100")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv := NewServer(r.store, r.v)
		// Limit 2 with half reserved for control: one bulk slot total.
		ctl := admit.New(admit.Options{Service: "obj", MaxConcurrent: 2, ControlShare: 0.5, Clock: r.v})
		srv.SetAdmission(ctl)
		r.v.Go("objstore-serve", func() { srv.Serve(l) })

		rel, err := ctl.Acquire("other", admit.Bulk)
		if err != nil {
			t.Fatalf("pre-acquire: %v", err)
		}

		// The bulk get sheds with a hint...
		var buf bytes.Buffer
		_, _, err = r.client.Get("k", 0, -1, &buf)
		var shed *admit.ShedError
		if !errors.As(err, &shed) {
			t.Fatalf("get err = %v, want ShedError", err)
		}
		// ...while stat (control class) still answers.
		size, exists, err := r.client.Stat("k")
		if err != nil || !exists || size != 7 {
			t.Fatalf("stat under bulk saturation: %d %v %v", size, exists, err)
		}

		// With retry, the get completes once the slot frees.
		r.client.SetRetry(retry.Policy{
			MaxAttempts: 5, BaseDelay: 50 * time.Millisecond,
			AttemptTimeout: time.Second, Clock: r.v,
		})
		r.v.Go("releaser", func() {
			r.v.Sleep(120 * time.Millisecond)
			rel()
		})
		buf.Reset()
		n, _, err := r.client.Get("k", 0, -1, &buf)
		if err != nil || n != 7 || buf.String() != "payload" {
			t.Fatalf("get after release: n=%d err=%v body=%q", n, err, buf.String())
		}
	})
}

func TestPutShedDrainsStreamThenRetrySucceeds(t *testing.T) {
	r := newRig()
	r.v.Run(func() {
		l, err := r.net.Host("srv").Listen("srv:7100")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv := NewServer(r.store, r.v)
		ctl := admit.New(admit.Options{Service: "obj", MaxConcurrent: 2, ControlShare: 0.5, Clock: r.v})
		srv.SetAdmission(ctl)
		r.v.Go("objstore-serve", func() { srv.Serve(l) })

		rel, err := ctl.Acquire("other", admit.Bulk)
		if err != nil {
			t.Fatalf("pre-acquire: %v", err)
		}

		// The whole upload is drained server-side before the shed answer,
		// so the connection framing stays intact.
		body := payload(3, 64<<10)
		_, err = r.client.Put("k", bytes.NewReader(body))
		var shed *admit.ShedError
		if !errors.As(err, &shed) {
			t.Fatalf("put err = %v, want ShedError", err)
		}

		r.client.SetRetry(retry.Policy{
			MaxAttempts: 5, BaseDelay: 50 * time.Millisecond,
			AttemptTimeout: time.Second, Clock: r.v,
		})
		r.v.Go("releaser", func() {
			r.v.Sleep(120 * time.Millisecond)
			rel()
		})
		n, err := r.client.Put("k", bytes.NewReader(body))
		if err != nil || n != int64(len(body)) {
			t.Fatalf("put after release: n=%d err=%v", n, err)
		}
		var buf bytes.Buffer
		gn, _, err := r.client.Get("k", 0, -1, &buf)
		if err != nil || gn != int64(len(body)) || !bytes.Equal(buf.Bytes(), body) {
			t.Fatalf("get back: n=%d err=%v", gn, err)
		}
	})
}

func TestControlShedSurfacesOnRoundTrip(t *testing.T) {
	r := newRig()
	r.store.PutBytes("k", []byte("x"))
	r.v.Run(func() {
		l, err := r.net.Host("srv").Listen("srv:7100")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv := NewServer(r.store, r.v)
		// One slot, no control reserve, no queue: even stat sheds while
		// the slot is held.
		ctl := admit.New(admit.Options{Service: "obj", MaxConcurrent: 1, ControlShare: -1, Clock: r.v})
		srv.SetAdmission(ctl)
		r.v.Go("objstore-serve", func() { srv.Serve(l) })

		rel, err := ctl.Acquire("other", admit.Bulk)
		if err != nil {
			t.Fatalf("pre-acquire: %v", err)
		}
		defer rel()

		_, _, err = r.client.Stat("k")
		var shed *admit.ShedError
		if !errors.As(err, &shed) {
			t.Fatalf("stat err = %v, want ShedError", err)
		}
		if _, err := r.client.List(""); !errors.As(err, &shed) {
			t.Fatalf("list err = %v, want ShedError", err)
		}
	})
}

func TestConnLimitRefusesAndRecovers(t *testing.T) {
	r := newRig()
	r.store.PutBytes("k", []byte("x"))
	r.v.Run(func() {
		l, err := r.net.Host("srv").Listen("srv:7100")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv := NewServer(r.store, r.v)
		ctl := admit.New(admit.Options{Service: "obj", MaxConcurrent: 8, MaxConns: 1, Clock: r.v})
		srv.SetAdmission(ctl)
		r.v.Go("objstore-serve", func() { srv.Serve(l) })

		// A held raw connection occupies the only connection slot (client
		// operations are per-connection, so an idle open conn is the way a
		// slow or stuck peer pins it).
		held, err := r.net.Host("app").Dial("srv:7100")
		if err != nil {
			t.Fatalf("hold conn: %v", err)
		}
		r.v.Sleep(10 * time.Millisecond) // let the server accept it

		// A second connection is closed at accept; fail-fast sees an error.
		c2 := NewClient(r.net.Host("app"), "srv:7100", r.v)
		if _, _, err := c2.Stat("k"); err == nil {
			t.Fatalf("second conn should be refused while the first is open")
		}

		// Once the held connection drops, the slot frees and a retrying
		// client connects.
		if err := held.Close(); err != nil {
			t.Fatalf("close held conn: %v", err)
		}
		c3 := NewClient(r.net.Host("app"), "srv:7100", r.v)
		c3.SetRetry(retry.Policy{
			MaxAttempts: 5, BaseDelay: 100 * time.Millisecond,
			AttemptTimeout: time.Second, Clock: r.v,
		})
		size, exists, err := c3.Stat("k")
		if err != nil || !exists || size != 1 {
			t.Fatalf("stat after conn slot freed: %d %v %v", size, exists, err)
		}
	})
}
