package objstore

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"time"

	"griddles/internal/retry"
	"griddles/internal/simclock"
	"griddles/internal/simnet"
)

// rig is a server on host "srv" plus a client on host "app".
type rig struct {
	v      *simclock.Virtual
	net    *simnet.Network
	store  *Store
	client *Client
}

func newRig() *rig {
	v := simclock.NewVirtualDefault()
	n := simnet.New(v)
	n.SetLinkBoth("app", "srv", simnet.LinkSpec{Latency: time.Millisecond})
	return &rig{v: v, net: n, store: NewStore(), client: NewClient(n.Host("app"), "srv:7100", v)}
}

// start must be called inside v.Run.
func (r *rig) start(t *testing.T) {
	t.Helper()
	l, err := r.net.Host("srv").Listen("srv:7100")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(r.store, r.v)
	r.v.Go("objstore-serve", func() { srv.Serve(l) })
}

func payload(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestStoreSemantics(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty store reported an object")
	}
	s.PutBytes("dir/a", []byte("first"))
	s.PutBytes("dir/b", []byte("second!"))
	s.PutBytes("other", []byte("x"))
	if size, ok := s.Stat("dir/b"); !ok || size != 7 {
		t.Fatalf("stat dir/b = %d,%v", size, ok)
	}
	// Replace is whole-object and atomic from the API's point of view.
	s.PutBytes("dir/a", []byte("replaced"))
	if b, _ := s.Get("dir/a"); string(b) != "replaced" {
		t.Fatalf("replace left %q", b)
	}
	got := s.List("dir/")
	if len(got) != 2 || got[0].Key != "dir/a" || got[1].Key != "dir/b" || got[0].Size != 8 {
		t.Fatalf("list dir/ = %+v", got)
	}
	if all := s.List(""); len(all) != 3 {
		t.Fatalf("list \"\" = %+v", all)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestClientStatGetList(t *testing.T) {
	r := newRig()
	want := payload(1, 200_000)
	r.store.PutBytes("data/obj", want)
	r.store.PutBytes("data/other", []byte("tiny"))
	r.v.Run(func() {
		r.start(t)
		size, exists, err := r.client.Stat("data/obj")
		if err != nil || !exists || size != int64(len(want)) {
			t.Fatalf("stat = %d,%v,%v", size, exists, err)
		}
		if _, exists, err = r.client.Stat("missing"); err != nil || exists {
			t.Fatalf("missing stat = %v,%v", exists, err)
		}

		// Whole-object GET.
		var buf bytes.Buffer
		n, sz, err := r.client.Get("data/obj", 0, -1, &buf)
		if err != nil || n != int64(len(want)) || sz != int64(len(want)) {
			t.Fatalf("get = %d,%d,%v", n, sz, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatal("get returned wrong bytes")
		}

		// Ranged GET.
		buf.Reset()
		n, sz, err = r.client.Get("data/obj", 100_000, 1234, &buf)
		if err != nil || n != 1234 || sz != int64(len(want)) {
			t.Fatalf("ranged get = %d,%d,%v", n, sz, err)
		}
		if !bytes.Equal(buf.Bytes(), want[100_000:101_234]) {
			t.Fatal("ranged get returned wrong bytes")
		}

		// Range past EOF clamps.
		buf.Reset()
		n, _, err = r.client.Get("data/obj", int64(len(want))-10, 100, &buf)
		if err != nil || n != 10 {
			t.Fatalf("tail get = %d,%v", n, err)
		}

		// Missing object is a server-reported (permanent) error.
		if _, _, err := r.client.Get("missing", 0, -1, io.Discard); err == nil {
			t.Fatal("get of missing object succeeded")
		}

		metas, err := r.client.List("data/")
		if err != nil || len(metas) != 2 || metas[0].Key != "data/obj" || metas[1].Key != "data/other" {
			t.Fatalf("list = %+v, %v", metas, err)
		}
	})
}

func TestClientPutCommitsAtomically(t *testing.T) {
	r := newRig()
	want := payload(2, 150_000)
	r.v.Run(func() {
		r.start(t)
		n, err := r.client.Put("out/obj", bytes.NewReader(want))
		if err != nil || n != int64(len(want)) {
			t.Fatalf("put = %d,%v", n, err)
		}
		got, ok := r.store.Get("out/obj")
		if !ok || !bytes.Equal(got, want) {
			t.Fatal("committed object does not match upload")
		}
		// Replace with a new complete body.
		n, err = r.client.Put("out/obj", bytes.NewReader([]byte("v2")))
		if err != nil || n != 2 {
			t.Fatalf("replace = %d,%v", n, err)
		}
		if got, _ := r.store.Get("out/obj"); string(got) != "v2" {
			t.Fatalf("replace left %q", got)
		}
		// An empty object is legal.
		if n, err := r.client.Put("out/empty", bytes.NewReader(nil)); err != nil || n != 0 {
			t.Fatalf("empty put = %d,%v", n, err)
		}
		if _, ok := r.store.Get("out/empty"); !ok {
			t.Fatal("empty object not committed")
		}
		// An empty key is rejected by the server, and the error comes back.
		if _, err := r.client.Put("", bytes.NewReader([]byte("x"))); err == nil {
			t.Fatal("empty-key put succeeded")
		}
	})
}

// TestGetResumesAfterReset breaks the link mid-stream and verifies the
// retrying client delivers each byte exactly once.
func TestGetResumesAfterReset(t *testing.T) {
	r := newRig()
	want := payload(3, 400_000)
	r.store.PutBytes("big", want)
	r.client.SetRetry(retry.Policy{Clock: r.v, MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond, AttemptTimeout: time.Second})
	r.v.Run(func() {
		r.start(t)
		r.net.FailAfter("srv", "app", 150_000)
		var buf bytes.Buffer
		n, sz, err := r.client.Get("big", 0, -1, &buf)
		if err != nil {
			t.Fatalf("get after reset: %v", err)
		}
		if n != int64(len(want)) || sz != int64(len(want)) {
			t.Fatalf("get = %d,%d", n, sz)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatal("resumed get corrupted the stream")
		}
	})
}

// TestPutReplaysAfterReset breaks the upload path and verifies the seekable
// replay commits the object exactly once, complete.
func TestPutReplaysAfterReset(t *testing.T) {
	r := newRig()
	want := payload(4, 300_000)
	r.client.SetRetry(retry.Policy{Clock: r.v, MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond, AttemptTimeout: time.Second})
	r.v.Run(func() {
		r.start(t)
		r.net.FailAfter("app", "srv", 100_000)
		n, err := r.client.Put("big", bytes.NewReader(want))
		if err != nil {
			t.Fatalf("put after reset: %v", err)
		}
		if n != int64(len(want)) {
			t.Fatalf("put = %d", n)
		}
		got, ok := r.store.Get("big")
		if !ok || !bytes.Equal(got, want) {
			t.Fatal("replayed put did not commit the complete object")
		}
	})
}

func TestCodecRejectsCorruptPayloads(t *testing.T) {
	if _, err := decodeGetReq([]byte{0x00}); err == nil {
		t.Error("truncated get request decoded")
	}
	if _, err := decodeGetReq(getReq{Key: "k", Off: -1, Length: 2}.encode()); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := decodeGetHdr(getHdr{Total: 10, Size: 5}.encode()); err == nil {
		t.Error("header with total > size accepted")
	}
	if _, err := decodePutBegin(putBegin{Key: ""}.encode()); err == nil {
		t.Error("empty put key accepted")
	}
	if _, err := decodeListResp([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("oversized list count accepted")
	}
}
