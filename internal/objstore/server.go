package objstore

import (
	"bufio"
	"fmt"
	"io"
	"net"

	"griddles/internal/simclock"
	"griddles/internal/wire"
)

// Server serves one Store to remote File Multiplexers.
type Server struct {
	store *Store
	clock simclock.Clock
	chunk int
}

// NewServer returns a Server exporting store.
func NewServer(store *Store, clock simclock.Clock) *Server {
	return &Server{store: store, clock: clock, chunk: streamChunk}
}

// Store reports the object table this server exports (for seeding tests).
func (s *Server) Store() *Store { return s.store }

// Serve accepts connections until l is closed.
func (s *Server) Serve(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.clock.Go("objstore-conn", func() { s.handle(conn) })
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		typ, payload, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		if err := s.dispatch(bw, br, typ, payload); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(w io.Writer, r *bufio.Reader, typ uint8, payload []byte) error {
	switch typ {
	case msgStat:
		req, err := decodeStatReq(payload)
		if err != nil {
			return writeError(w, err)
		}
		size, exists := s.store.Stat(req.Key)
		return wire.WriteFrame(w, msgStatResp, statResp{Exists: exists, Size: size}.encode())

	case msgGet:
		req, err := decodeGetReq(payload)
		if err != nil {
			return writeError(w, err)
		}
		return s.get(w, req)

	case msgList:
		req, err := decodeListReq(payload)
		if err != nil {
			return writeError(w, err)
		}
		return wire.WriteFrame(w, msgListResp, listResp{Objects: s.store.List(req.Prefix)}.encode())

	case msgPutBegin:
		req, err := decodePutBegin(payload)
		if err != nil {
			drainPut(r)
			return writeError(w, err)
		}
		return s.put(w, r, req.Key)

	default:
		return writeError(w, fmt.Errorf("objstore: unknown message type %d", typ))
	}
}

// get streams the requested range as header, data frames, end.
func (s *Server) get(w io.Writer, req getReq) error {
	data, ok := s.store.Get(req.Key)
	if !ok {
		return writeError(w, fmt.Errorf("objstore: %s: no such object", req.Key))
	}
	size := int64(len(data))
	off := req.Off
	if off > size {
		off = size
	}
	end := size
	if req.Length >= 0 && off+req.Length < end {
		end = off + req.Length
	}
	if err := wire.WriteFrame(w, msgGetHdr, getHdr{Total: end - off, Size: size}.encode()); err != nil {
		return err
	}
	for off < end {
		n := int64(s.chunk)
		if end-off < n {
			n = end - off
		}
		if err := wire.WriteFrame(w, msgGetData, data[off:off+n]); err != nil {
			return err
		}
		off += n
	}
	return wire.WriteFrame(w, msgGetEnd, nil)
}

// put accumulates the upload stream and commits it atomically when the end
// frame arrives. A connection that dies mid-stream commits nothing — that
// is the whole-object atomic PUT contract, and it is what makes a client
// replay after a transport fault safe (the object appears exactly once,
// complete).
func (s *Server) put(w io.Writer, r *bufio.Reader, key string) error {
	var body []byte
	for {
		typ, payload, err := wire.ReadFrame(r)
		if err != nil {
			return err
		}
		switch typ {
		case msgPutData:
			body = append(body, payload...)
		case msgPutEnd:
			s.store.Put(key, body)
			return wire.WriteFrame(w, msgPutResp, putResp{Size: int64(len(body))}.encode())
		default:
			return writeError(w, fmt.Errorf("objstore: unexpected frame %d during put", typ))
		}
	}
}

// drainPut consumes a rejected upload stream so the connection stays usable.
func drainPut(r *bufio.Reader) {
	for {
		typ, _, err := wire.ReadFrame(r)
		if err != nil || typ == msgPutEnd {
			return
		}
	}
}

func writeError(w io.Writer, err error) error {
	return wire.WriteFrame(w, msgError, wire.NewEncoder().String(err.Error()).Bytes())
}
