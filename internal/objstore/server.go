package objstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"

	"griddles/internal/admit"
	"griddles/internal/simclock"
	"griddles/internal/wire"
)

// Server serves one Store to remote File Multiplexers.
type Server struct {
	store  *Store
	clock  simclock.Clock
	chunk  int
	adm    *admit.Controller
	codecs []string
}

// NewServer returns a Server exporting store.
func NewServer(store *Store, clock simclock.Clock) *Server {
	return &Server{store: store, clock: clock, chunk: streamChunk}
}

// Store reports the object table this server exports (for seeding tests).
func (s *Server) Store() *Store { return s.store }

// SetAdmission installs an admission controller; nil (the default) admits
// everything, preserving the unprotected server's behaviour bit for bit.
// Stat and list are Control class; object gets and puts are Bulk.
func (s *Server) SetAdmission(c *admit.Controller) { s.adm = c }

// SetCodecs restricts the stream codecs this server will negotiate (the
// daemon's -codecs flag). Empty (the default) accepts everything this build
// supports; raw is always available regardless.
func (s *Server) SetCodecs(names []string) { s.codecs = names }

// classOf maps a request type to its admission class.
func classOf(typ uint8) admit.Class {
	switch typ {
	case msgStat, msgList, msgNegotiate:
		return admit.Control
	}
	return admit.Bulk
}

// Serve accepts connections until l is closed. Temporary accept failures
// are ridden out with backoff instead of killing the server.
func (s *Server) Serve(l net.Listener) {
	backoff := admit.NewAcceptBackoff(s.clock)
	for {
		conn, err := l.Accept()
		if err != nil {
			if admit.Temporary(err) {
				backoff.Sleep()
				continue
			}
			return
		}
		backoff.Reset()
		crel, ok := s.adm.AdmitConn()
		if !ok {
			conn.Close()
			continue
		}
		s.clock.Go("objstore-conn", func() {
			defer crel()
			s.handle(conn)
		})
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	tenant := admit.TenantOf(conn)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	cc := &connCodec{}
	for {
		typ, payload, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		rel, aerr := s.adm.Acquire(tenant, classOf(typ))
		if aerr != nil {
			if typ == msgPutBegin {
				// The client streams the upload regardless; drain it so the
				// connection stays usable after the shed.
				drainPut(br)
			}
			if err := writeShed(bw, aerr); err != nil {
				return
			}
		} else {
			derr := s.dispatch(bw, br, typ, payload, cc)
			rel()
			if derr != nil {
				return
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// writeShed answers one request with a shed frame (or a plain error frame
// when err is not a shed), leaving the connection usable.
func writeShed(w io.Writer, err error) error {
	var shed *admit.ShedError
	if errors.As(err, &shed) {
		return admit.WriteShed(w, shed)
	}
	return writeError(w, err)
}

func (s *Server) dispatch(w io.Writer, r *bufio.Reader, typ uint8, payload []byte, cc *connCodec) error {
	switch typ {
	case msgNegotiate:
		d := wire.NewDecoder(payload)
		req := d.String()
		if err := d.Err(); err != nil {
			return writeError(w, err)
		}
		chosen := wire.NegotiateCodec(req, s.codecs)
		codec, err := wire.ForName(chosen)
		if err != nil {
			return writeError(w, err)
		}
		cc.codec = codec
		return wire.WriteFrame(w, msgNegotiateResp, wire.NewEncoder().String(chosen).Bytes())

	case msgStat:
		req, err := decodeStatReq(payload)
		if err != nil {
			return writeError(w, err)
		}
		size, exists := s.store.Stat(req.Key)
		return wire.WriteFrame(w, msgStatResp, statResp{Exists: exists, Size: size}.encode())

	case msgGet:
		req, err := decodeGetReq(payload)
		if err != nil {
			return writeError(w, err)
		}
		return s.get(w, req, cc)

	case msgList:
		req, err := decodeListReq(payload)
		if err != nil {
			return writeError(w, err)
		}
		return wire.WriteFrame(w, msgListResp, listResp{Objects: s.store.List(req.Prefix)}.encode())

	case msgPutBegin:
		req, err := decodePutBegin(payload)
		if err != nil {
			drainPut(r)
			return writeError(w, err)
		}
		return s.put(w, r, req.Key, cc)

	default:
		return writeError(w, fmt.Errorf("objstore: unknown message type %d", typ))
	}
}

// get streams the requested range as header, data frames, end.
func (s *Server) get(w io.Writer, req getReq, cc *connCodec) error {
	data, ok := s.store.Get(req.Key)
	if !ok {
		return writeError(w, fmt.Errorf("objstore: %s: no such object", req.Key))
	}
	size := int64(len(data))
	off := req.Off
	if off > size {
		off = size
	}
	end := size
	if req.Length >= 0 && off+req.Length < end {
		end = off + req.Length
	}
	if err := wire.WriteFrame(w, msgGetHdr, getHdr{Total: end - off, Size: size}.encode()); err != nil {
		return err
	}
	for off < end {
		n := int64(s.chunk)
		if end-off < n {
			n = end - off
		}
		if err := wire.WriteFrame(w, msgGetData, cc.enc(data[off:off+n])); err != nil {
			return err
		}
		off += n
	}
	return wire.WriteFrame(w, msgGetEnd, nil)
}

// put accumulates the upload stream and commits it atomically when the end
// frame arrives. A connection that dies mid-stream commits nothing — that
// is the whole-object atomic PUT contract, and it is what makes a client
// replay after a transport fault safe (the object appears exactly once,
// complete).
func (s *Server) put(w io.Writer, r *bufio.Reader, key string, cc *connCodec) error {
	var body []byte
	var frameBuf []byte
	for {
		typ, payload, err := wire.ReadFrameInto(r, &frameBuf)
		if err != nil {
			return err
		}
		switch typ {
		case msgPutData:
			chunk, derr := cc.dec(payload)
			if derr != nil {
				return writeError(w, derr)
			}
			body = append(body, chunk...)
		case msgPutEnd:
			s.store.Put(key, body)
			return wire.WriteFrame(w, msgPutResp, putResp{Size: int64(len(body))}.encode())
		default:
			return writeError(w, fmt.Errorf("objstore: unexpected frame %d during put", typ))
		}
	}
}

// drainPut consumes a rejected upload stream so the connection stays usable.
func drainPut(r *bufio.Reader) {
	for {
		typ, _, err := wire.ReadFrame(r)
		if err != nil || typ == msgPutEnd {
			return
		}
	}
}

func writeError(w io.Writer, err error) error {
	return wire.WriteFrame(w, msgError, wire.NewEncoder().String(err.Error()).Bytes())
}
