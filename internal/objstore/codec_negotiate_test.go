package objstore

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"testing"

	"griddles/internal/simclock"
	"griddles/internal/wire"
)

// TestCodecGetPutRoundTrip: an lzb-negotiated client round-trips an object
// byte-identically through compressed put and get streams.
func TestCodecGetPutRoundTrip(t *testing.T) {
	r := newRig()
	r.client.SetCodec(wire.CodecLZB)
	want := bytes.Repeat([]byte("row,17,42.5,ok\n"), 20000)
	r.v.Run(func() {
		r.start(t)
		n, err := r.client.Put("obj", bytes.NewReader(want))
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		if n != int64(len(want)) {
			t.Fatalf("put committed %d bytes, want %d", n, len(want))
		}
		stored, ok := r.store.Get("obj")
		if !ok || !bytes.Equal(stored, want) {
			t.Fatal("server stored different bytes than the client sent")
		}
		var got bytes.Buffer
		gn, size, err := r.client.Get("obj", 0, -1, &got)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if gn != int64(len(want)) || size != int64(len(want)) || !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("get returned %d/%d bytes, content match=%v", gn, size, bytes.Equal(got.Bytes(), want))
		}
		// Ranged reads slice the raw object regardless of the wire codec.
		var mid bytes.Buffer
		if _, _, err := r.client.Get("obj", 100, 999, &mid); err != nil {
			t.Fatalf("ranged get: %v", err)
		}
		if !bytes.Equal(mid.Bytes(), want[100:1099]) {
			t.Fatal("ranged get content mismatch under codec")
		}
	})
}

// serveOldObjstore is a frame-level stand-in for a pre-negotiation server:
// get and put raw, msgError (connection kept) for unknown types.
func serveOldObjstore(clock simclock.Clock, store *Store, l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		clock.Go("old-objstore-conn", func() {
			defer conn.Close()
			br := bufio.NewReader(conn)
			bw := bufio.NewWriter(conn)
			for {
				typ, payload, err := wire.ReadFrame(br)
				if err != nil {
					return
				}
				switch typ {
				case msgGet:
					req, derr := decodeGetReq(payload)
					if derr != nil {
						writeError(bw, derr)
						break
					}
					data, ok := store.Get(req.Key)
					if !ok {
						writeError(bw, errors.New("no such object"))
						break
					}
					wire.WriteFrame(bw, msgGetHdr, getHdr{Total: int64(len(data)), Size: int64(len(data))}.encode())
					for off := 0; off < len(data); off += streamChunk {
						end := min(off+streamChunk, len(data))
						wire.WriteFrame(bw, msgGetData, data[off:end])
					}
					wire.WriteFrame(bw, msgGetEnd, nil)
				case msgPutBegin:
					req, derr := decodePutBegin(payload)
					if derr != nil {
						writeError(bw, derr)
						break
					}
					var body []byte
					for {
						typ, p, err := wire.ReadFrame(br)
						if err != nil {
							return
						}
						if typ == msgPutEnd {
							break
						}
						body = append(body, p...)
					}
					store.Put(req.Key, body)
					wire.WriteFrame(bw, msgPutResp, putResp{Size: int64(len(body))}.encode())
				default:
					writeError(bw, errors.New("objstore: unknown message type"))
				}
				if bw.Flush() != nil {
					return
				}
			}
		})
	}
}

// TestCodecOldServerFallsBack: a codec-requesting client against a
// pre-negotiation server completes both directions raw and lossless.
func TestCodecOldServerFallsBack(t *testing.T) {
	r := newRig()
	r.client.SetCodec(wire.CodecLZB)
	want := bytes.Repeat([]byte("legacy"), 30000)
	r.v.Run(func() {
		l, err := r.net.Host("srv").Listen("srv:7100")
		if err != nil {
			t.Fatal(err)
		}
		r.v.Go("old-objstore-serve", func() { serveOldObjstore(r.v, r.store, l) })

		if _, err := r.client.Put("obj", bytes.NewReader(want)); err != nil {
			t.Fatalf("put against old server: %v", err)
		}
		stored, _ := r.store.Get("obj")
		if !bytes.Equal(stored, want) {
			t.Fatal("old server stored different bytes (compressed frames leaked through)")
		}
		var got bytes.Buffer
		if _, _, err := r.client.Get("obj", 0, -1, &got); err != nil {
			t.Fatalf("get against old server: %v", err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatal("old-server get content mismatch")
		}
	})
}
