package objstore

import (
	"errors"
	"fmt"

	"griddles/internal/wire"
)

// Protocol message types. A GET response is a header frame, zero or more
// data frames, then an end frame — the same streaming shape as the gridftp
// fetch path, so a broken stream is resumable from the bytes delivered. A
// PUT is a begin frame, zero or more data frames, then an end frame; the
// server commits the object only when the end frame arrives, which is what
// makes the upload atomic.
const (
	msgStat     = 1
	msgStatResp = 2
	msgGet      = 3
	msgGetHdr   = 4
	msgGetData  = 5
	msgGetEnd   = 6
	msgPutBegin = 7
	msgPutData  = 8
	msgPutEnd   = 9
	msgPutResp  = 10
	msgList     = 11
	msgListResp = 12
	// Stream-encoding negotiation: a client that wants a compressed
	// connection sends one capability frame (the codec name) before its
	// operation; a new server answers with the codec it settled on, while an
	// old server answers msgError for the unknown type and keeps the
	// connection usable, so the client transparently falls back to raw. A
	// client configured raw sends nothing at all — byte-identical wire.
	msgNegotiate     = 13
	msgNegotiateResp = 14
	msgError         = 255
)

// connCodec is one connection's negotiated block codec plus reusable
// transform buffers, so a steady transfer allocates nothing per frame.
type connCodec struct {
	codec  wire.Codec
	encBuf []byte
	decBuf []byte
}

func (cc *connCodec) active() bool { return cc != nil && cc.codec != nil }

// enc compresses one data chunk; the result aliases an internal buffer
// valid until the next enc. Raw state passes data through untouched.
func (cc *connCodec) enc(data []byte) []byte {
	if !cc.active() {
		return data
	}
	cc.encBuf = cc.codec.Encode(cc.encBuf[:0], data)
	return cc.encBuf
}

// dec reverses enc; the result aliases an internal buffer valid until the
// next dec.
func (cc *connCodec) dec(data []byte) ([]byte, error) {
	if !cc.active() {
		return data, nil
	}
	var err error
	cc.decBuf, err = cc.codec.Decode(cc.decBuf[:0], data)
	return cc.decBuf, err
}

// streamChunk is the frame size GET/PUT bulk streaming uses.
const streamChunk = 64 * 1024

// maxListKeys bounds a LIST reply against corrupt counts.
const maxListKeys = 1 << 20

// statReq asks for one object's existence and size.
type statReq struct {
	Key string
}

func (r statReq) encode() []byte {
	return wire.NewEncoder().String(r.Key).Bytes()
}

func decodeStatReq(p []byte) (statReq, error) {
	d := wire.NewDecoder(p)
	r := statReq{Key: d.String()}
	return r, d.Err()
}

// statResp answers a statReq.
type statResp struct {
	Exists bool
	Size   int64
}

func (r statResp) encode() []byte {
	return wire.NewEncoder().Bool(r.Exists).I64(r.Size).Bytes()
}

func decodeStatResp(p []byte) (statResp, error) {
	d := wire.NewDecoder(p)
	r := statResp{Exists: d.Bool(), Size: d.I64()}
	return r, d.Err()
}

// getReq asks for [Off, Off+Length) of an object; Length < 0 means the rest
// of the object.
type getReq struct {
	Key    string
	Off    int64
	Length int64
}

func (r getReq) encode() []byte {
	return wire.NewEncoder().String(r.Key).I64(r.Off).I64(r.Length).Bytes()
}

func decodeGetReq(p []byte) (getReq, error) {
	d := wire.NewDecoder(p)
	r := getReq{Key: d.String(), Off: d.I64(), Length: d.I64()}
	if err := d.Err(); err != nil {
		return getReq{}, err
	}
	if r.Off < 0 {
		return getReq{}, fmt.Errorf("objstore: negative get offset %d", r.Off)
	}
	return r, nil
}

// getHdr opens a GET stream: Total is the byte count the data frames will
// carry; Size is the full object size (so a ranged reader learns the end).
type getHdr struct {
	Total int64
	Size  int64
}

func (r getHdr) encode() []byte {
	return wire.NewEncoder().I64(r.Total).I64(r.Size).Bytes()
}

func decodeGetHdr(p []byte) (getHdr, error) {
	d := wire.NewDecoder(p)
	r := getHdr{Total: d.I64(), Size: d.I64()}
	if err := d.Err(); err != nil {
		return getHdr{}, err
	}
	if r.Total < 0 || r.Size < 0 || r.Total > r.Size {
		return getHdr{}, errors.New("objstore: inconsistent get header")
	}
	return r, nil
}

// putBegin opens a PUT stream for one object key.
type putBegin struct {
	Key string
}

func (r putBegin) encode() []byte {
	return wire.NewEncoder().String(r.Key).Bytes()
}

func decodePutBegin(p []byte) (putBegin, error) {
	d := wire.NewDecoder(p)
	r := putBegin{Key: d.String()}
	if err := d.Err(); err != nil {
		return putBegin{}, err
	}
	if r.Key == "" {
		return putBegin{}, errors.New("objstore: empty object key")
	}
	return r, nil
}

// putResp acknowledges a committed PUT with the object size.
type putResp struct {
	Size int64
}

func (r putResp) encode() []byte {
	return wire.NewEncoder().I64(r.Size).Bytes()
}

func decodePutResp(p []byte) (putResp, error) {
	d := wire.NewDecoder(p)
	r := putResp{Size: d.I64()}
	return r, d.Err()
}

// listReq asks for the objects under a key prefix.
type listReq struct {
	Prefix string
}

func (r listReq) encode() []byte {
	return wire.NewEncoder().String(r.Prefix).Bytes()
}

func decodeListReq(p []byte) (listReq, error) {
	d := wire.NewDecoder(p)
	r := listReq{Prefix: d.String()}
	return r, d.Err()
}

// listResp answers a listReq with the matching objects, sorted by key.
type listResp struct {
	Objects []Meta
}

func (r listResp) encode() []byte {
	e := wire.NewEncoder().U32(uint32(len(r.Objects)))
	for _, o := range r.Objects {
		e.String(o.Key).I64(o.Size)
	}
	return e.Bytes()
}

func decodeListResp(p []byte) (listResp, error) {
	d := wire.NewDecoder(p)
	n := d.U32()
	if err := d.Err(); err != nil {
		return listResp{}, err
	}
	if n > maxListKeys {
		return listResp{}, fmt.Errorf("objstore: oversized list reply (%d keys)", n)
	}
	r := listResp{}
	for i := uint32(0); i < n; i++ {
		m := Meta{Key: d.String(), Size: d.I64()}
		if err := d.Err(); err != nil {
			return listResp{}, err
		}
		r.Objects = append(r.Objects, m)
	}
	return r, nil
}
