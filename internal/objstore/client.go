package objstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"

	"griddles/internal/admit"
	"griddles/internal/obs"
	"griddles/internal/retry"
	"griddles/internal/simclock"
	"griddles/internal/wire"
)

// Dialer opens connections to service addresses.
type Dialer interface {
	Dial(addr string) (net.Conn, error)
}

// Client talks to one object-store server. In cloud-storage style every
// operation runs on its own connection — there is no per-client session
// state, so the Client is safe for concurrent use (the FM's prefetch
// workers issue ranged Gets in parallel with the reader).
//
// With a retry policy set (SetRetry), operations survive transport faults:
// an interrupted GET stream resumes from the last byte delivered, and an
// interrupted PUT replays from the start of a seekable source — safe,
// because the server commits an object only when the complete upload's end
// frame arrives. Server-reported errors ("no such object") are never
// retried.
type Client struct {
	dialer Dialer
	addr   string
	clock  simclock.Clock
	retry  retry.Policy

	// codecName is the stream codec proposed for bulk Get/Put transfers
	// ("" or "raw" = no negotiation frame at all, byte-identical wire).
	codecName string

	getTotal  *obs.Counter
	getBytes  *obs.Counter
	putTotal  *obs.Counter
	putBytes  *obs.Counter
	statTotal *obs.Counter
	listTotal *obs.Counter
}

// NewClient returns a Client for the object store at addr.
func NewClient(dialer Dialer, addr string, clock simclock.Clock) *Client {
	c := &Client{dialer: dialer, addr: addr, clock: clock}
	c.SetObserver(nil)
	return c
}

// SetObserver routes this client's metrics (objstore.* in OBSERVABILITY.md)
// to o; nil discards them. Call before issuing requests.
func (c *Client) SetObserver(o *obs.Observer) {
	c.getTotal = o.Counter("objstore.get.total")
	c.getBytes = o.Counter("objstore.get.bytes")
	c.putTotal = o.Counter("objstore.put.total")
	c.putBytes = o.Counter("objstore.put.bytes")
	c.statTotal = o.Counter("objstore.stat.total")
	c.listTotal = o.Counter("objstore.list.total")
}

// SetRetry installs the resilience policy. The zero policy (the default)
// preserves fail-fast behaviour.
func (c *Client) SetRetry(p retry.Policy) { c.retry = p }

// SetCodec requests a stream codec for bulk Get/Put transfers. "" or "raw"
// (the default) sends no negotiation frame at all; any other codec is
// proposed per connection and transparently dropped to raw when the peer
// does not speak it.
func (c *Client) SetCodec(name string) { c.codecName = name }

// Codec reports the codec SetCodec configured.
func (c *Client) Codec() string { return c.codecName }

// readNegotiateReply consumes the server's answer to a capability frame:
// the negotiated state, nil for raw (including the msgError an old server
// answers for the unknown message type).
func readNegotiateReply(br *bufio.Reader) (*connCodec, error) {
	typ, resp, err := wire.ReadFrame(br)
	if err != nil {
		return nil, err
	}
	switch typ {
	case msgError:
		return nil, nil // old peer: rejected the type, connection usable
	case admit.MsgShed:
		shed, err := admit.DecodeShed(resp)
		if err != nil {
			return nil, err
		}
		return nil, shed
	case msgNegotiateResp:
		d := wire.NewDecoder(resp)
		chosen := d.String()
		if err := d.Err(); err != nil {
			return nil, retry.Permanent(err)
		}
		codec, err := wire.ForName(chosen)
		if err != nil {
			return nil, retry.Permanent(fmt.Errorf("objstore: server chose %w", err))
		}
		if codec == nil {
			return nil, nil
		}
		return &connCodec{codec: codec}, nil
	default:
		return nil, retry.Permanent(fmt.Errorf("objstore: unexpected negotiation reply %d", typ))
	}
}

// Addr reports the server address.
func (c *Client) Addr() string { return c.addr }

// Close releases the client. Connections are per-operation, so there is
// nothing to tear down; Close exists so clients pool cleanly.
func (c *Client) Close() error { return nil }

// dial opens a fresh connection with the retry policy's idle deadline
// armed (a later frame read re-arms it, bounding silence, not transfers).
func (c *Client) dial() (net.Conn, error) {
	conn, err := c.dialer.Dial(c.addr)
	if err != nil {
		return nil, fmt.Errorf("objstore: dial %s: %w", c.addr, err)
	}
	if idle := c.retry.Timeout(); idle > 0 {
		conn.SetDeadline(c.clock.Now().Add(idle))
	}
	return conn, nil
}

// roundTrip performs one request/response on a dedicated connection.
func (c *Client) roundTrip(reqType uint8, payload []byte, wantType uint8) ([]byte, error) {
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, reqType, payload); err != nil {
		return nil, err
	}
	typ, resp, err := wire.ReadFrame(bufio.NewReader(conn))
	if err != nil {
		return nil, err
	}
	if typ == admit.MsgShed {
		// Overload shed: the retry policy waits out the server's hint and
		// re-asks.
		shed, err := admit.DecodeShed(resp)
		if err != nil {
			return nil, err
		}
		return nil, shed
	}
	if typ == msgError {
		return nil, retry.Permanent(errors.New("objstore: " + wire.NewDecoder(resp).String()))
	}
	if typ != wantType {
		return nil, retry.Permanent(fmt.Errorf("objstore: unexpected reply %d", typ))
	}
	return resp, nil
}

// Stat reports whether key exists on the server and its size.
func (c *Client) Stat(key string) (size int64, exists bool, err error) {
	c.statTotal.Inc()
	err = c.retry.Do("objstore.stat", func(int) error {
		resp, err := c.roundTrip(msgStat, statReq{Key: key}.encode(), msgStatResp)
		if err != nil {
			return err
		}
		r, err := decodeStatResp(resp)
		if err != nil {
			return retry.Permanent(err)
		}
		size, exists = r.Size, r.Exists
		return nil
	})
	if err != nil {
		return 0, false, err
	}
	return size, exists, nil
}

// List reports the objects under prefix, sorted by key.
func (c *Client) List(prefix string) ([]Meta, error) {
	c.listTotal.Inc()
	var out []Meta
	err := c.retry.Do("objstore.list", func(int) error {
		resp, err := c.roundTrip(msgList, listReq{Prefix: prefix}.encode(), msgListResp)
		if err != nil {
			return err
		}
		r, err := decodeListResp(resp)
		if err != nil {
			return retry.Permanent(err)
		}
		out = r.Objects
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Get streams [off, off+length) of key into w; length < 0 means the rest
// of the object. It returns the byte count delivered and the full object
// size. With a retry policy set, a broken stream resumes from the last byte
// written to w (w only ever sees each byte once).
func (c *Client) Get(key string, off, length int64, w io.Writer) (n, size int64, err error) {
	c.getTotal.Inc()
	var total int64
	err = c.retry.Do("objstore.get", func(int) error {
		remaining := length
		if remaining >= 0 {
			remaining -= total
			if remaining <= 0 && total > 0 {
				// Every byte arrived; only the end-of-stream frame was lost.
				return nil
			}
		}
		got, sz, gerr := c.getOnce(key, off+total, remaining, w)
		total += got
		if sz > 0 || gerr == nil {
			size = sz
		}
		return gerr
	})
	c.getBytes.Add(total)
	if err != nil {
		return total, size, err
	}
	return total, size, nil
}

func (c *Client) getOnce(key string, off, length int64, w io.Writer) (total, size int64, err error) {
	conn, err := c.dial()
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	idle := c.retry.Timeout()
	br := bufio.NewReader(conn)
	var cc *connCodec
	wantCodec := c.codecName != "" && c.codecName != wire.CodecRaw
	if wantCodec {
		// The capability frame pipelines ahead of the GET: both requests go
		// out together and the replies arrive in order, so negotiation costs
		// no extra round trip even on this per-operation connection.
		neg := wire.NewEncoder().String(c.codecName).Bytes()
		if err := wire.WriteFrame(conn, msgNegotiate, neg); err != nil {
			return 0, 0, err
		}
	}
	if err := wire.WriteFrame(conn, msgGet, getReq{Key: key, Off: off, Length: length}.encode()); err != nil {
		return 0, 0, err
	}
	if wantCodec {
		var err error
		cc, err = readNegotiateReply(br)
		if err != nil {
			return 0, 0, err
		}
	}
	typ, resp, err := wire.ReadFrame(br)
	if err != nil {
		return 0, 0, err
	}
	if typ == admit.MsgShed {
		shed, err := admit.DecodeShed(resp)
		if err != nil {
			return 0, 0, err
		}
		return 0, 0, shed
	}
	if typ == msgError {
		return 0, 0, retry.Permanent(errors.New("objstore: " + wire.NewDecoder(resp).String()))
	}
	if typ != msgGetHdr {
		return 0, 0, retry.Permanent(fmt.Errorf("objstore: unexpected reply %d", typ))
	}
	hdr, err := decodeGetHdr(resp)
	if err != nil {
		return 0, 0, retry.Permanent(err)
	}
	size = hdr.Size
	var frameBuf []byte
	for {
		// The deadline is per frame, so it bounds silence, not the whole
		// transfer.
		if idle > 0 {
			conn.SetDeadline(c.clock.Now().Add(idle))
		}
		typ, payload, err := wire.ReadFrameInto(br, &frameBuf)
		if err != nil {
			return total, size, err
		}
		switch typ {
		case msgGetData:
			data, derr := cc.dec(payload)
			if derr != nil {
				return total, size, retry.Permanent(derr)
			}
			n, werr := w.Write(data)
			total += int64(n)
			if werr != nil {
				return total, size, retry.Permanent(werr)
			}
		case msgGetEnd:
			if total != hdr.Total {
				return total, size, retry.Permanent(fmt.Errorf("objstore: get got %d bytes, header said %d", total, hdr.Total))
			}
			return total, size, nil
		case msgError:
			return total, size, retry.Permanent(errors.New("objstore: " + wire.NewDecoder(payload).String()))
		default:
			return total, size, retry.Permanent(fmt.Errorf("objstore: unexpected frame %d during get", typ))
		}
	}
}

// Put uploads r as the complete, immutable body of key, replacing any
// previous object. It returns the committed size. With a retry policy set,
// a broken upload replays from the start when r is an io.Seeker — the
// server commits only complete streams, so a replay never doubles bytes; a
// non-seekable source fails permanently once bytes have been consumed.
func (c *Client) Put(key string, r io.Reader) (int64, error) {
	c.putTotal.Inc()
	seeker, canSeek := r.(io.Seeker)
	var consumed bool
	var total int64
	err := c.retry.Do("objstore.put", func(int) error {
		if consumed && canSeek {
			if _, err := seeker.Seek(0, io.SeekStart); err != nil {
				return retry.Permanent(err)
			}
		}
		n, readAny, err := c.putOnce(key, r)
		if readAny {
			consumed = true
		}
		total = n
		if err != nil && consumed && !canSeek {
			return retry.Permanent(fmt.Errorf("objstore: put %s: source not seekable, cannot replay: %w", key, err))
		}
		return err
	})
	if err != nil {
		return 0, err
	}
	c.putBytes.Add(total)
	return total, nil
}

func (c *Client) putOnce(key string, r io.Reader) (total int64, readAny bool, err error) {
	conn, err := c.dial()
	if err != nil {
		return 0, false, err
	}
	defer conn.Close()
	idle := c.retry.Timeout()
	bw := bufio.NewWriter(conn)
	br := bufio.NewReader(conn)
	var cc *connCodec
	if c.codecName != "" && c.codecName != wire.CodecRaw {
		// Uploads must know the answer before encoding any data (an old
		// server would store compressed frames verbatim), so the capability
		// exchange completes before the begin frame.
		neg := wire.NewEncoder().String(c.codecName).Bytes()
		if err := wire.WriteFrame(bw, msgNegotiate, neg); err != nil {
			return 0, false, err
		}
		if err := bw.Flush(); err != nil {
			return 0, false, err
		}
		var err error
		cc, err = readNegotiateReply(br)
		if err != nil {
			return 0, false, err
		}
	}
	if err := wire.WriteFrame(bw, msgPutBegin, putBegin{Key: key}.encode()); err != nil {
		return 0, false, err
	}
	buf := make([]byte, streamChunk)
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			readAny = true
			if idle > 0 {
				conn.SetDeadline(c.clock.Now().Add(idle))
			}
			if err := wire.WriteFrame(bw, msgPutData, cc.enc(buf[:n])); err != nil {
				return 0, readAny, err
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return 0, readAny, retry.Permanent(rerr)
		}
	}
	if err := wire.WriteFrame(bw, msgPutEnd, nil); err != nil {
		return 0, readAny, err
	}
	if err := bw.Flush(); err != nil {
		return 0, readAny, err
	}
	if idle > 0 {
		conn.SetDeadline(c.clock.Now().Add(idle))
	}
	typ, resp, err := wire.ReadFrame(br)
	if err != nil {
		return 0, readAny, err
	}
	if typ == admit.MsgShed {
		shed, err := admit.DecodeShed(resp)
		if err != nil {
			return 0, readAny, err
		}
		return 0, readAny, shed
	}
	if typ == msgError {
		return 0, readAny, retry.Permanent(errors.New("objstore: " + wire.NewDecoder(resp).String()))
	}
	if typ != msgPutResp {
		return 0, readAny, retry.Permanent(fmt.Errorf("objstore: unexpected reply %d", typ))
	}
	pr, err := decodePutResp(resp)
	if err != nil {
		return 0, readAny, retry.Permanent(err)
	}
	return pr.Size, readAny, nil
}
