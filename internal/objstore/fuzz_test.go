package objstore

import (
	"testing"
)

// FuzzDecodeGetReq: arbitrary payloads never panic the GET-request decoder,
// and anything it accepts survives an encode → decode round trip.
func FuzzDecodeGetReq(f *testing.F) {
	f.Add(getReq{Key: "wf/out.dat", Off: 0, Length: -1}.encode())
	f.Add(getReq{Key: "k", Off: 4096, Length: 65536}.encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeGetReq(data)
		if err != nil {
			return
		}
		again, err := decodeGetReq(req.encode())
		if err != nil {
			t.Fatalf("re-decode of a re-encoded get request failed: %v", err)
		}
		if again != req {
			t.Fatalf("round trip changed the request: %+v -> %+v", req, again)
		}
	})
}

// FuzzDecodeListResp: arbitrary payloads never panic the LIST-reply
// decoder, and accepted replies round-trip exactly — the reply carries a
// count-prefixed repeated group, the codec's only variable-shape message.
func FuzzDecodeListResp(f *testing.F) {
	f.Add(listResp{Objects: []Meta{{Key: "a", Size: 1}, {Key: "dir/b", Size: 65536}}}.encode())
	f.Add(listResp{}.encode())
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := decodeListResp(data)
		if err != nil {
			return
		}
		again, err := decodeListResp(resp.encode())
		if err != nil {
			t.Fatalf("re-decode of a re-encoded list reply failed: %v", err)
		}
		if len(again.Objects) != len(resp.Objects) {
			t.Fatalf("round trip changed the count: %d -> %d", len(resp.Objects), len(again.Objects))
		}
		for i := range resp.Objects {
			if again.Objects[i] != resp.Objects[i] {
				t.Fatalf("round trip changed object %d: %+v -> %+v", i, resp.Objects[i], again.Objects[i])
			}
		}
	})
}

// FuzzDecodeStreamHeaders: the small fixed-shape messages (stat request and
// reply, get header, put begin and reply) never panic and round-trip.
func FuzzDecodeStreamHeaders(f *testing.F) {
	f.Add(uint8(0), statReq{Key: "k"}.encode())
	f.Add(uint8(1), statResp{Exists: true, Size: 12345}.encode())
	f.Add(uint8(2), getHdr{Total: 10, Size: 20}.encode())
	f.Add(uint8(3), putBegin{Key: "out"}.encode())
	f.Add(uint8(4), putResp{Size: 7}.encode())
	f.Fuzz(func(t *testing.T, which uint8, data []byte) {
		switch which % 5 {
		case 0:
			if r, err := decodeStatReq(data); err == nil {
				if again, err := decodeStatReq(r.encode()); err != nil || again != r {
					t.Fatalf("stat request round trip: %+v, %v", again, err)
				}
			}
		case 1:
			if r, err := decodeStatResp(data); err == nil {
				if again, err := decodeStatResp(r.encode()); err != nil || again != r {
					t.Fatalf("stat reply round trip: %+v, %v", again, err)
				}
			}
		case 2:
			if r, err := decodeGetHdr(data); err == nil {
				if again, err := decodeGetHdr(r.encode()); err != nil || again != r {
					t.Fatalf("get header round trip: %+v, %v", again, err)
				}
			}
		case 3:
			if r, err := decodePutBegin(data); err == nil {
				if again, err := decodePutBegin(r.encode()); err != nil || again != r {
					t.Fatalf("put begin round trip: %+v, %v", again, err)
				}
			}
		case 4:
			if r, err := decodePutResp(data); err == nil {
				if again, err := decodePutResp(r.encode()); err != nil || again != r {
					t.Fatalf("put reply round trip: %+v, %v", again, err)
				}
			}
		}
	})
}
