// Package objstore implements the object-store storage service behind the
// File Multiplexer's mechanism 7.
//
// The service has object-store semantics, deliberately narrower than the
// POSIX-shaped gridftp file service: objects are written as a whole with an
// immutable, atomic PUT (the object appears — complete — only when the
// upload commits), read with ranged GETs, and enumerated with prefix LISTs.
// There is no partial overwrite; replacing an object means PUTting a
// complete new body under the same key. These are the semantics of S3-style
// cloud storage, and the divergences from POSIX are pinned in the FM's
// conformance suite (see DESIGN.md §12).
//
// As with the other services, the protocol is framed binary messages over
// any net.Conn, so the same code runs on simnet in experiments and TCP in
// cmd/objstored.
package objstore

import (
	"sort"
	"sync"
)

// Meta describes one stored object.
type Meta struct {
	Key  string
	Size int64
}

// Store is the in-memory object table one server exports. An object's bytes
// are immutable once committed; Put replaces the whole value atomically.
// Store is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewStore returns an empty Store.
func NewStore() *Store {
	return &Store{objects: make(map[string][]byte)}
}

// Put commits data under key, replacing any previous object. The caller
// must not modify data afterwards (the store takes ownership); the server's
// upload path always hands over a private buffer.
func (s *Store) Put(key string, data []byte) {
	s.mu.Lock()
	s.objects[key] = data
	s.mu.Unlock()
}

// PutBytes commits a private copy of data under key. Tests and seeding use
// it so the caller keeps ownership of its slice.
func (s *Store) PutBytes(key string, data []byte) {
	s.Put(key, append([]byte(nil), data...))
}

// Get reports the committed bytes of key. The returned slice is the
// store's — treat it as read-only.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.objects[key]
	return b, ok
}

// Stat reports whether key exists and its size.
func (s *Store) Stat(key string) (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.objects[key]
	return int64(len(b)), ok
}

// List reports the objects whose keys start with prefix, sorted by key.
func (s *Store) List(prefix string) []Meta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Meta
	for k, v := range s.objects {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, Meta{Key: k, Size: int64(len(v))})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Len reports the number of committed objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}
