// Package soap implements the Grid Buffer service's historically faithful
// transport: SOAP 1.1 envelopes over HTTP POST, one connection per call —
// exactly how the paper's prototype exposed the service ("implemented using
// Web Services, and is accessed by SOAP messages", §4).
//
// The HTTP layer is a deliberately small HTTP/1.1 subset rather than
// net/http: under the deterministic virtual clock every goroutine that can
// block must be registered with the clock, and net/http spawns its own.
// The same code serves real TCP in wall-clock mode.
package soap

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"

	"griddles/internal/simclock"
)

// MaxBody bounds request/response bodies (16 MiB).
const MaxBody = 16 << 20

// Handler processes one POST: it receives the request path and body and
// returns a status code and response body.
type Handler func(path string, body []byte) (status int, resp []byte)

// HTTPServer is the minimal HTTP/1.1 POST server.
type HTTPServer struct {
	clock   simclock.Clock
	handler Handler
}

// NewHTTPServer returns a server invoking handler per request.
func NewHTTPServer(clock simclock.Clock, handler Handler) *HTTPServer {
	return &HTTPServer{clock: clock, handler: handler}
}

// Serve accepts connections until l is closed. Connections are treated as
// one-request-per-connection (HTTP/1.0 style with explicit close), matching
// the 2004 connection-per-call SOAP stacks this package models.
func (s *HTTPServer) Serve(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.clock.Go("soap-http-conn", func() { s.handle(conn) })
	}
}

func (s *HTTPServer) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	method, path, body, err := ReadRequest(br)
	if err != nil {
		writeResponse(conn, 400, []byte("bad request: "+err.Error()))
		return
	}
	if method != "POST" {
		writeResponse(conn, 405, []byte("method not allowed"))
		return
	}
	status, resp := s.handler(path, body)
	writeResponse(conn, status, resp)
}

// ReadRequest parses one HTTP request (request line, headers,
// Content-Length-delimited body).
func ReadRequest(br *bufio.Reader) (method, path string, body []byte, err error) {
	line, err := readLine(br)
	if err != nil {
		return "", "", nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return "", "", nil, fmt.Errorf("soap: malformed request line %q", line)
	}
	method, path = parts[0], parts[1]
	length, err := readHeaders(br)
	if err != nil {
		return "", "", nil, err
	}
	if length > 0 {
		body = make([]byte, length)
		if _, err := io.ReadFull(br, body); err != nil {
			return "", "", nil, fmt.Errorf("soap: short body: %w", err)
		}
	}
	return method, path, body, nil
}

// readHeaders consumes headers up to the blank line and returns the
// Content-Length (0 if absent).
func readHeaders(br *bufio.Reader) (int, error) {
	length := 0
	for {
		line, err := readLine(br)
		if err != nil {
			return 0, err
		}
		if line == "" {
			return length, nil
		}
		if k, v, ok := strings.Cut(line, ":"); ok {
			if strings.EqualFold(strings.TrimSpace(k), "Content-Length") {
				n, err := strconv.Atoi(strings.TrimSpace(v))
				if err != nil || n < 0 || n > MaxBody {
					return 0, fmt.Errorf("soap: bad Content-Length %q", v)
				}
				length = n
			}
		}
	}
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 405:
		return "Method Not Allowed"
	case 500:
		return "Internal Server Error"
	default:
		return "Status"
	}
}

func writeResponse(w io.Writer, status int, body []byte) error {
	hdr := fmt.Sprintf("HTTP/1.1 %d %s\r\nContent-Type: text/xml; charset=utf-8\r\nContent-Length: %d\r\nConnection: close\r\n\r\n",
		status, statusText(status), len(body))
	if _, err := io.WriteString(w, hdr); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// Dialer opens connections to service addresses.
type Dialer interface {
	Dial(addr string) (net.Conn, error)
}

// Post performs one HTTP POST on a fresh connection (the connection-per-
// call discipline) and returns the response body. Callers that need the
// 2004 stacks' serialized teardown use PostWithClock.
func Post(dialer Dialer, addr, path string, body []byte) ([]byte, error) {
	conn, err := dialer.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("soap: dial %s: %w", addr, err)
	}
	defer conn.Close()
	req := fmt.Sprintf("POST %s HTTP/1.1\r\nHost: %s\r\nContent-Type: text/xml; charset=utf-8\r\nSOAPAction: \"\"\r\nContent-Length: %d\r\nConnection: close\r\n\r\n",
		path, addr, len(body))
	if _, err := io.WriteString(conn, req); err != nil {
		return nil, err
	}
	if _, err := conn.Write(body); err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, fmt.Errorf("soap: malformed status line %q", line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("soap: bad status in %q", line)
	}
	length, err := readHeaders(br)
	if err != nil {
		return nil, err
	}
	resp := make([]byte, length)
	if _, err := io.ReadFull(br, resp); err != nil {
		return nil, fmt.Errorf("soap: short response body: %w", err)
	}
	if status != 200 {
		return nil, &HTTPError{Status: status, Body: string(resp)}
	}
	return resp, nil
}

// HTTPError is a non-200 response.
type HTTPError struct {
	Status int
	Body   string
}

// Error implements error.
func (e *HTTPError) Error() string {
	return fmt.Sprintf("soap: HTTP %d: %s", e.Status, e.Body)
}

// PostWithClock is Post plus the polite-close teardown of 2004 SOAP
// clients: after the response, the caller waits out a FIN handshake
// (charged as the measured connection-setup time) before the next call.
func PostWithClock(clock simclock.Clock, dialer Dialer, addr, path string, body []byte) ([]byte, error) {
	t0 := clock.Now()
	resp, err := Post(dialer, addr, path, body)
	if err != nil {
		return nil, err
	}
	// Setup took half the exchange; the teardown costs one more handshake.
	clock.Sleep(clock.Now().Sub(t0) / 2)
	return resp, nil
}
