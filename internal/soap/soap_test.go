package soap

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"griddles/internal/gridbuffer"
	"griddles/internal/simclock"
	"griddles/internal/simnet"
	"griddles/internal/vfs"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	in := Body{Put: &PutReq{Key: "wf/file", Index: 42, Data: "AAEC"}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "schemas.xmlsoap.org/soap/envelope") {
		t.Errorf("not a SOAP envelope:\n%s", data)
	}
	out, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Put == nil || *out.Put != *in.Put {
		t.Errorf("round trip = %+v", out.Put)
	}
}

func TestEnvelopeFault(t *testing.T) {
	data, _ := Marshal(Body{Fault: &Fault{Code: "soap:Server", String: "boom"}})
	out, err := Unmarshal(data)
	if err != nil || out.Fault == nil || out.Fault.String != "boom" {
		t.Errorf("fault round trip: %+v err=%v", out.Fault, err)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not xml at all")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadRequestParsing(t *testing.T) {
	raw := "POST /GridBufferService HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello"
	method, path, body, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if method != "POST" || path != "/GridBufferService" || string(body) != "hello" {
		t.Errorf("parsed %q %q %q", method, path, body)
	}
}

func TestReadRequestRejectsBadLength(t *testing.T) {
	for _, raw := range []string{
		"POST / HTTP/1.1\r\nContent-Length: -3\r\n\r\n",
		"POST / HTTP/1.1\r\nContent-Length: zillion\r\n\r\n",
		"GARBAGE\r\n\r\n",
	} {
		if _, _, _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Errorf("accepted %q", raw)
		}
	}
}

// rig is a SOAP buffer service on simnet.
type rig struct {
	v   *simclock.Virtual
	net *simnet.Network
	reg *gridbuffer.Registry
}

func newRig(spec simnet.LinkSpec) *rig {
	v := simclock.NewVirtualDefault()
	n := simnet.New(v)
	n.SetLinkBoth("w", "svc", spec)
	n.SetLinkBoth("r", "svc", simnet.LinkSpec{Latency: 100 * time.Microsecond})
	return &rig{v: v, net: n, reg: gridbuffer.NewRegistry(v, vfs.NewMemFS())}
}

func (r *rig) start(t *testing.T) {
	t.Helper()
	l, err := r.net.Host("svc").Listen("svc:8000")
	if err != nil {
		t.Fatal(err)
	}
	r.v.Go("soap-serve", func() { ServeBuffer(r.v, r.reg).Serve(l) })
}

func TestSOAPStreamEndToEnd(t *testing.T) {
	r := newRig(simnet.LinkSpec{Latency: 2 * time.Millisecond})
	want := make([]byte, 60_000)
	rand.New(rand.NewSource(7)).Read(want)
	r.v.Run(func() {
		r.start(t)
		var got []byte
		done := simclock.NewWaitGroup(r.v)
		done.Add(1)
		r.v.Go("reader", func() {
			defer done.Done()
			rd, err := NewBufferReader(r.v, r.net.Host("r"), "svc:8000", "k", gridbuffer.Options{})
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			defer rd.Close()
			got, _ = io.ReadAll(rd)
		})
		w, err := NewBufferWriter(r.v, r.net.Host("w"), "svc:8000", "k", gridbuffer.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(want); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		done.Wait()
		if !bytes.Equal(got, want) {
			t.Errorf("SOAP stream corrupted: %d vs %d bytes", len(got), len(want))
		}
	})
}

func TestSOAPBlockingRead(t *testing.T) {
	r := newRig(simnet.LinkSpec{Latency: time.Millisecond})
	r.v.Run(func() {
		r.start(t)
		var firstRead time.Duration
		done := simclock.NewWaitGroup(r.v)
		done.Add(1)
		r.v.Go("reader", func() {
			defer done.Done()
			rd, err := NewBufferReader(r.v, r.net.Host("r"), "svc:8000", "k", gridbuffer.Options{})
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			defer rd.Close()
			buf := make([]byte, 16)
			io.ReadFull(rd, buf)
			firstRead = r.v.Elapsed()
			io.Copy(io.Discard, rd)
		})
		r.v.Sleep(30 * time.Second)
		w, _ := NewBufferWriter(r.v, r.net.Host("w"), "svc:8000", "k", gridbuffer.Options{BlockSize: 16})
		w.Write(bytes.Repeat([]byte{7}, 64))
		w.Close()
		done.Wait()
		if firstRead < 30*time.Second {
			t.Errorf("read returned at %v, before any data existed", firstRead)
		}
	})
}

func TestSOAPFaultOnUnknownBuffer(t *testing.T) {
	r := newRig(simnet.LinkSpec{})
	r.v.Run(func() {
		r.start(t)
		_, err := call(r.v, r.net.Host("w"), "svc:8000", Body{Put: &PutReq{Key: "ghost", Index: 0, Data: ""}})
		if err == nil || !strings.Contains(err.Error(), "fault") {
			t.Errorf("err = %v, want SOAP fault", err)
		}
	})
}

func TestSOAPRejectsWrongPathAndMethod(t *testing.T) {
	r := newRig(simnet.LinkSpec{})
	r.v.Run(func() {
		r.start(t)
		payload, _ := Marshal(Body{Attach: &AttachReq{Key: "k", Role: "writer"}})
		if _, err := Post(r.net.Host("w"), "svc:8000", "/wrong", payload); err == nil {
			t.Error("wrong path accepted")
		}
		// Raw GET is rejected.
		conn, err := r.net.Host("w").Dial("svc:8000")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		io.WriteString(conn, "GET / HTTP/1.1\r\n\r\n")
		resp, _ := io.ReadAll(conn)
		if !strings.Contains(string(resp), "405") {
			t.Errorf("GET response: %q", resp)
		}
	})
}

func TestSOAPIsSlowerThanBinaryOnWAN(t *testing.T) {
	// The ablation claim: over a high-latency link the SOAP envelope +
	// base64 + connection-per-call stack is measurably slower than the
	// binary connection-per-call transport for the same payload.
	const total = 100 * 4096
	lat := simnet.LinkSpec{Latency: 50 * time.Millisecond, Bandwidth: 1 << 20}

	soapTime := func() time.Duration {
		r := newRig(lat)
		r.v.Run(func() {
			r.start(t)
			done := simclock.NewWaitGroup(r.v)
			done.Add(1)
			r.v.Go("reader", func() {
				defer done.Done()
				rd, _ := NewBufferReader(r.v, r.net.Host("r"), "svc:8000", "k", gridbuffer.Options{})
				defer rd.Close()
				io.Copy(io.Discard, rd)
			})
			w, _ := NewBufferWriter(r.v, r.net.Host("w"), "svc:8000", "k", gridbuffer.Options{})
			w.Write(make([]byte, total))
			w.Close()
			done.Wait()
		})
		return r.v.Elapsed()
	}()

	binTime := func() time.Duration {
		v := simclock.NewVirtualDefault()
		n := simnet.New(v)
		n.SetLinkBoth("w", "svc", lat)
		n.SetLinkBoth("r", "svc", simnet.LinkSpec{Latency: 100 * time.Microsecond})
		reg := gridbuffer.NewRegistry(v, vfs.NewMemFS())
		v.Run(func() {
			l, err := n.Host("svc").Listen("svc:7000")
			if err != nil {
				t.Fatal(err)
			}
			v.Go("serve", func() { gridbuffer.NewServer(reg, v).Serve(l) })
			done := simclock.NewWaitGroup(v)
			done.Add(1)
			v.Go("reader", func() {
				defer done.Done()
				rd, _ := gridbuffer.NewReader(n.Host("r"), "svc:7000", v, "k", gridbuffer.Options{}, gridbuffer.ReaderOptions{})
				defer rd.Close()
				io.Copy(io.Discard, rd)
			})
			w, _ := gridbuffer.NewWriter(n.Host("w"), "svc:7000", v, "k", gridbuffer.Options{},
				gridbuffer.WriterOptions{ConnPerCall: true})
			w.Write(make([]byte, total))
			w.Close()
			done.Wait()
		})
		return v.Elapsed()
	}()

	if soapTime <= binTime {
		t.Errorf("SOAP (%v) not slower than binary conn-per-call (%v)", soapTime, binTime)
	}
}

// Property: any payload survives the SOAP writer/reader round trip intact.
func TestSOAPStreamProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, bsRaw uint8) bool {
		size := int(sizeRaw) % 20000
		bs := int(bsRaw)%700 + 1
		want := make([]byte, size)
		rand.New(rand.NewSource(seed)).Read(want)
		r := newRig(simnet.LinkSpec{Latency: time.Millisecond})
		ok := true
		r.v.Run(func() {
			l, err := r.net.Host("svc").Listen("svc:8000")
			if err != nil {
				ok = false
				return
			}
			r.v.Go("serve", func() { ServeBuffer(r.v, r.reg).Serve(l) })
			opts := gridbuffer.Options{BlockSize: bs}
			var got []byte
			done := simclock.NewWaitGroup(r.v)
			done.Add(1)
			r.v.Go("reader", func() {
				defer done.Done()
				rd, err := NewBufferReader(r.v, r.net.Host("r"), "svc:8000", "k", opts)
				if err != nil {
					ok = false
					return
				}
				defer rd.Close()
				got, _ = io.ReadAll(rd)
			})
			w, err := NewBufferWriter(r.v, r.net.Host("w"), "svc:8000", "k", opts)
			if err != nil {
				ok = false
				return
			}
			if _, err := w.Write(want); err != nil {
				ok = false
				return
			}
			if err := w.Close(); err != nil {
				ok = false
				return
			}
			done.Wait()
			ok = ok && bytes.Equal(got, want)
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
