package soap

import (
	"encoding/base64"
	"encoding/xml"
	"fmt"
	"io"

	"griddles/internal/gridbuffer"
	"griddles/internal/simclock"
)

// BufferPath is the endpoint the Grid Buffer service is exposed at.
const BufferPath = "/GridBufferService"

// Envelope is a SOAP 1.1 envelope holding exactly one operation element.
type Envelope struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Envelope"`
	Body    Body     `xml:"http://schemas.xmlsoap.org/soap/envelope/ Body"`
}

// Body carries the operation or a fault.
type Body struct {
	Attach         *AttachReq  `xml:"Attach,omitempty"`
	AttachResp     *AttachResp `xml:"AttachResponse,omitempty"`
	Put            *PutReq     `xml:"Put,omitempty"`
	PutResp        *OKResp     `xml:"PutResponse,omitempty"`
	Get            *GetReq     `xml:"Get,omitempty"`
	GetResp        *GetResp    `xml:"GetResponse,omitempty"`
	CloseWrite     *CloseReq   `xml:"CloseWrite,omitempty"`
	CloseWriteResp *OKResp     `xml:"CloseWriteResponse,omitempty"`
	Detach         *DetachReq  `xml:"Detach,omitempty"`
	DetachResp     *OKResp     `xml:"DetachResponse,omitempty"`
	Fault          *Fault      `xml:"Fault,omitempty"`
}

// Fault is a SOAP fault.
type Fault struct {
	Code   string `xml:"faultcode"`
	String string `xml:"faultstring"`
}

// AttachReq creates/joins a buffer. Role is "writer" or "reader".
type AttachReq struct {
	Key       string `xml:"key"`
	Role      string `xml:"role"`
	BlockSize int    `xml:"blockSize"`
	Cache     bool   `xml:"cache"`
	Readers   int    `xml:"readers"`
}

// AttachResp reports the negotiated parameters.
type AttachResp struct {
	ReaderID  int `xml:"readerId"`
	BlockSize int `xml:"blockSize"`
}

// PutReq stores one block; Data is base64 (as 2004 SOAP stacks shipped
// binary).
type PutReq struct {
	Key   string `xml:"key"`
	Index int64  `xml:"index"`
	Data  string `xml:"data"`
}

// GetReq fetches one block.
type GetReq struct {
	Key      string `xml:"key"`
	ReaderID int    `xml:"readerId"`
	Index    int64  `xml:"index"`
}

// GetResp returns a block or the end-of-stream marker.
type GetResp struct {
	EOF  bool   `xml:"eof"`
	Data string `xml:"data"`
}

// CloseReq marks end-of-stream.
type CloseReq struct {
	Key   string `xml:"key"`
	Total int64  `xml:"total"`
}

// DetachReq releases a reader.
type DetachReq struct {
	Key      string `xml:"key"`
	ReaderID int    `xml:"readerId"`
}

// OKResp is an empty acknowledgement.
type OKResp struct{}

// Marshal encodes a body into a full envelope document.
func Marshal(body Body) ([]byte, error) {
	data, err := xml.Marshal(Envelope{Body: body})
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), data...), nil
}

// Unmarshal decodes an envelope document.
func Unmarshal(data []byte) (Body, error) {
	var env Envelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return Body{}, fmt.Errorf("soap: %w", err)
	}
	return env.Body, nil
}

// BufferServer exposes a gridbuffer.Registry as the SOAP service.
type BufferServer struct {
	reg *gridbuffer.Registry
}

// NewBufferServer returns the service for reg; install its Handle with an
// HTTPServer.
func NewBufferServer(reg *gridbuffer.Registry) *BufferServer {
	return &BufferServer{reg: reg}
}

// Handle implements Handler.
func (s *BufferServer) Handle(path string, reqBody []byte) (int, []byte) {
	if path != BufferPath {
		return 400, fault("Client", "unknown endpoint "+path)
	}
	body, err := Unmarshal(reqBody)
	if err != nil {
		return 400, fault("Client", err.Error())
	}
	resp, err := s.dispatch(body)
	if err != nil {
		return 500, fault("Server", err.Error())
	}
	out, err := Marshal(resp)
	if err != nil {
		return 500, fault("Server", err.Error())
	}
	return 200, out
}

func fault(code, msg string) []byte {
	out, err := Marshal(Body{Fault: &Fault{Code: "soap:" + code, String: msg}})
	if err != nil {
		return []byte(msg)
	}
	return out
}

func (s *BufferServer) dispatch(body Body) (Body, error) {
	switch {
	case body.Attach != nil:
		r := body.Attach
		b := s.reg.GetOrCreate(r.Key, gridbuffer.Options{
			BlockSize: r.BlockSize, Cache: r.Cache, Readers: r.Readers,
		})
		id := -1
		if r.Role == "reader" {
			id = b.Attach()
		}
		return Body{AttachResp: &AttachResp{ReaderID: id, BlockSize: b.BlockSize()}}, nil

	case body.Put != nil:
		r := body.Put
		b, ok := s.reg.Lookup(r.Key)
		if !ok {
			return Body{}, fmt.Errorf("no buffer %q", r.Key)
		}
		data, err := base64.StdEncoding.DecodeString(r.Data)
		if err != nil {
			return Body{}, fmt.Errorf("bad block data: %w", err)
		}
		if err := b.Put(r.Index, data); err != nil {
			return Body{}, err
		}
		return Body{PutResp: &OKResp{}}, nil

	case body.Get != nil:
		r := body.Get
		b, ok := s.reg.Lookup(r.Key)
		if !ok {
			return Body{}, fmt.Errorf("no buffer %q", r.Key)
		}
		data, eof, err := b.Get(r.ReaderID, r.Index)
		if err != nil {
			return Body{}, err
		}
		return Body{GetResp: &GetResp{EOF: eof, Data: base64.StdEncoding.EncodeToString(data)}}, nil

	case body.CloseWrite != nil:
		r := body.CloseWrite
		b, ok := s.reg.Lookup(r.Key)
		if !ok {
			return Body{}, fmt.Errorf("no buffer %q", r.Key)
		}
		if err := b.CloseWrite(r.Total); err != nil {
			return Body{}, err
		}
		return Body{CloseWriteResp: &OKResp{}}, nil

	case body.Detach != nil:
		r := body.Detach
		if b, ok := s.reg.Lookup(r.Key); ok {
			b.Detach(r.ReaderID)
		}
		return Body{DetachResp: &OKResp{}}, nil

	default:
		return Body{}, fmt.Errorf("empty SOAP body")
	}
}

// call performs one SOAP round trip with the period's polite-close
// teardown.
func call(clock simclock.Clock, dialer Dialer, addr string, req Body) (Body, error) {
	payload, err := Marshal(req)
	if err != nil {
		return Body{}, err
	}
	respBytes, err := PostWithClock(clock, dialer, addr, BufferPath, payload)
	if err != nil {
		if he, ok := err.(*HTTPError); ok {
			if body, uerr := Unmarshal([]byte(he.Body)); uerr == nil && body.Fault != nil {
				return Body{}, fmt.Errorf("soap fault %s: %s", body.Fault.Code, body.Fault.String)
			}
		}
		return Body{}, err
	}
	resp, err := Unmarshal(respBytes)
	if err != nil {
		return Body{}, err
	}
	if resp.Fault != nil {
		return Body{}, fmt.Errorf("soap fault %s: %s", resp.Fault.Code, resp.Fault.String)
	}
	return resp, nil
}

// BufferWriter streams sequential writes into a Grid Buffer over SOAP, one
// envelope per block. It implements io.WriteCloser.
type BufferWriter struct {
	clock     simclock.Clock
	dialer    Dialer
	addr      string
	key       string
	blockSize int
	partial   []byte
	nextIdx   int64
	total     int64
	closed    bool
}

// NewBufferWriter attaches (as writer) to key at addr.
func NewBufferWriter(clock simclock.Clock, dialer Dialer, addr, key string, opts gridbuffer.Options) (*BufferWriter, error) {
	resp, err := call(clock, dialer, addr, Body{Attach: &AttachReq{
		Key: key, Role: "writer", BlockSize: opts.BlockSize, Cache: opts.Cache, Readers: opts.Readers,
	}})
	if err != nil {
		return nil, err
	}
	if resp.AttachResp == nil {
		return nil, fmt.Errorf("soap: attach returned no response")
	}
	return &BufferWriter{clock: clock, dialer: dialer, addr: addr, key: key, blockSize: resp.AttachResp.BlockSize}, nil
}

// Write implements io.Writer.
func (w *BufferWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("soap: write after close")
	}
	total := 0
	for len(p) > 0 {
		space := w.blockSize - len(w.partial)
		n := len(p)
		if n > space {
			n = space
		}
		w.partial = append(w.partial, p[:n]...)
		p = p[n:]
		total += n
		if len(w.partial) == w.blockSize {
			if err := w.flushBlock(); err != nil {
				return total, err
			}
		}
	}
	w.total += int64(total)
	return total, nil
}

func (w *BufferWriter) flushBlock() error {
	req := Body{Put: &PutReq{Key: w.key, Index: w.nextIdx, Data: base64.StdEncoding.EncodeToString(w.partial)}}
	w.nextIdx++
	w.partial = w.partial[:0]
	_, err := call(w.clock, w.dialer, w.addr, req)
	return err
}

// Close flushes the tail and marks end-of-stream.
func (w *BufferWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.partial) > 0 {
		if err := w.flushBlock(); err != nil {
			return err
		}
	}
	_, err := call(w.clock, w.dialer, w.addr, Body{CloseWrite: &CloseReq{Key: w.key, Total: w.total}})
	return err
}

// BufferReader consumes a Grid Buffer over SOAP, one envelope per block.
// It implements io.ReadSeekCloser; backward seeks are served by the
// service's cache file exactly as with the binary transport.
type BufferReader struct {
	clock     simclock.Clock
	dialer    Dialer
	addr      string
	key       string
	readerID  int
	blockSize int
	pos       int64
	cur       []byte
	total     int64 // stream length or best upper bound; -1 unknown
	closed    bool
}

// NewBufferReader attaches (as reader) to key at addr.
func NewBufferReader(clock simclock.Clock, dialer Dialer, addr, key string, opts gridbuffer.Options) (*BufferReader, error) {
	resp, err := call(clock, dialer, addr, Body{Attach: &AttachReq{
		Key: key, Role: "reader", BlockSize: opts.BlockSize, Cache: opts.Cache, Readers: opts.Readers,
	}})
	if err != nil {
		return nil, err
	}
	if resp.AttachResp == nil {
		return nil, fmt.Errorf("soap: attach returned no response")
	}
	return &BufferReader{
		clock: clock, dialer: dialer, addr: addr, key: key,
		readerID: resp.AttachResp.ReaderID, blockSize: resp.AttachResp.BlockSize,
		total: -1,
	}, nil
}

func (r *BufferReader) noteTotal(v int64) {
	if r.total < 0 || v < r.total {
		r.total = v
	}
}

// Read implements io.Reader: blocks (in simulated or real time) until the
// writer produces the next block.
func (r *BufferReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("soap: read after close")
	}
	bs := int64(r.blockSize)
	for len(r.cur) == 0 {
		if r.total >= 0 && r.pos >= r.total {
			return 0, io.EOF
		}
		idx := r.pos / bs
		resp, err := call(r.clock, r.dialer, r.addr, Body{Get: &GetReq{Key: r.key, ReaderID: r.readerID, Index: idx}})
		if err != nil {
			return 0, err
		}
		if resp.GetResp == nil {
			return 0, fmt.Errorf("soap: get returned no response")
		}
		if resp.GetResp.EOF {
			r.noteTotal(idx * bs)
			continue
		}
		data, err := base64.StdEncoding.DecodeString(resp.GetResp.Data)
		if err != nil {
			return 0, fmt.Errorf("soap: bad block data: %w", err)
		}
		if len(data) < r.blockSize {
			r.noteTotal(idx*bs + int64(len(data)))
		}
		off := r.pos - idx*bs
		if off < 0 || off >= int64(len(data)) {
			continue // position past a short tail; the total re-check exits
		}
		r.cur = data[off:]
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	r.pos += int64(n)
	return n, nil
}

// Seek implements io.Seeker (start- and current-relative).
func (r *BufferReader) Seek(offset int64, whence int) (int64, error) {
	if r.closed {
		return 0, fmt.Errorf("soap: seek after close")
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = r.pos
	default:
		return 0, fmt.Errorf("soap: unsupported whence %d", whence)
	}
	npos := base + offset
	if npos < 0 {
		return 0, fmt.Errorf("soap: negative seek")
	}
	if npos != r.pos {
		r.cur = nil
		r.pos = npos
	}
	return npos, nil
}

// Close detaches the reader.
func (r *BufferReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	_, err := call(r.clock, r.dialer, r.addr, Body{Detach: &DetachReq{Key: r.key, ReaderID: r.readerID}})
	return err
}

// ServeBuffer is a convenience: an HTTPServer wired to a BufferServer.
func ServeBuffer(clock simclock.Clock, reg *gridbuffer.Registry) *HTTPServer {
	return NewHTTPServer(clock, NewBufferServer(reg).Handle)
}
