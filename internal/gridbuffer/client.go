package gridbuffer

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"griddles/internal/simclock"
	"griddles/internal/wire"
)

// Dialer opens connections to service addresses.
type Dialer interface {
	Dial(addr string) (net.Conn, error)
}

// DefaultWriterWindow bounds the writer's in-flight unacknowledged Puts in
// persistent-connection mode. The paper's Grid Buffer is a Web-Services
// request/response per block, so effective pipelining is shallow — this is
// the knob behind its observed latency sensitivity (Table 5) and is
// deliberately small by default. `go test -bench=AblationTransport` sweeps
// it against the connection-per-call discipline.
const DefaultWriterWindow = 2

// DefaultReaderDepth is the reader's prefetch pipeline depth.
const DefaultReaderDepth = 2

// Writer streams an application's sequential writes into a remote Grid
// Buffer as fixed-size blocks. It implements io.WriteCloser.
type Writer struct {
	clock     simclock.Clock
	conn      net.Conn
	bw        *bufio.Writer
	key       string
	blockSize int

	// connection-per-call (SOAP-style) state
	connPerCall bool
	dialer      Dialer
	addr        string
	opts        Options

	window  *simclock.Semaphore
	winSize int64
	done    *simclock.Event

	mu     sync.Mutex // guards err
	err    error
	closed bool

	partial []byte
	nextIdx int64
	total   int64
}

// WriterOptions tunes a Writer beyond the buffer Options.
type WriterOptions struct {
	// Window is the number of unacknowledged in-flight Puts (0 selects
	// DefaultWriterWindow).
	Window int
	// ConnPerCall reproduces the paper's Web-Services transport behaviour:
	// every block is delivered on a fresh, politely closed connection (TCP
	// handshake + request round trip + serialized teardown, ~3 RTTs per
	// block), as 2004 connection-per-call SOAP stacks did. This is
	// dramatically latency-sensitive — the very effect the paper observes
	// on its trans-continental Table 5 rows — and is the default in the
	// experiment harness. Window is ignored in this mode.
	ConnPerCall bool
}

// attach dials addr and performs one Attach handshake, returning the open
// connection and the negotiated parameters.
func attach(dialer Dialer, addr string, key string, role uint8, opts Options) (net.Conn, *bufio.Reader, *bufio.Writer, int, int, error) {
	conn, err := dialer.Dial(addr)
	if err != nil {
		return nil, nil, nil, 0, 0, fmt.Errorf("gridbuffer: dial %s: %w", addr, err)
	}
	bw := bufio.NewWriter(conn)
	e := wire.NewEncoder()
	e.String(key).U8(role)
	encodeOptions(e, opts)
	if err := wire.WriteFrame(bw, msgAttach, e.Bytes()); err != nil {
		conn.Close()
		return nil, nil, nil, 0, 0, err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return nil, nil, nil, 0, 0, err
	}
	br := bufio.NewReader(conn)
	typ, resp, err := wire.ReadFrame(br)
	if err != nil {
		conn.Close()
		return nil, nil, nil, 0, 0, err
	}
	if typ == msgError {
		conn.Close()
		return nil, nil, nil, 0, 0, errors.New("gridbuffer: " + wire.NewDecoder(resp).String())
	}
	d := wire.NewDecoder(resp)
	readerID := int(d.I64())
	blockSize := int(d.U32())
	if err := d.Err(); err != nil {
		conn.Close()
		return nil, nil, nil, 0, 0, err
	}
	return conn, br, bw, readerID, blockSize, nil
}

// NewWriter attaches to (or creates) the buffer key on the service at addr
// and returns a Writer.
func NewWriter(dialer Dialer, addr string, clock simclock.Clock, key string, opts Options, wopts WriterOptions) (*Writer, error) {
	conn, br, bw, _, blockSize, err := attach(dialer, addr, key, roleWriter, opts)
	if err != nil {
		return nil, err
	}
	win := wopts.Window
	if win <= 0 {
		win = DefaultWriterWindow
	}
	w := &Writer{
		clock:       clock,
		conn:        conn,
		bw:          bw,
		key:         key,
		blockSize:   blockSize,
		connPerCall: wopts.ConnPerCall,
		dialer:      dialer,
		addr:        addr,
		opts:        opts,
		window:      simclock.NewSemaphore(clock, int64(win)),
		winSize:     int64(win),
		done:        simclock.NewEvent(clock),
	}
	if w.connPerCall {
		// The construction connection only created the buffer; each block
		// travels on its own connection, so close it now.
		conn.Close()
		w.conn, w.bw = nil, nil
		return w, nil
	}
	clock.Go("gridbuffer-writer-acks", func() { w.ackLoop(br) })
	return w, nil
}

// oneCall opens a fresh connection, performs a single request/response,
// closes it and waits out the teardown — the 2004 connection-per-call SOAP
// discipline. Per call that is a TCP handshake, one request round trip,
// and a FIN handshake before the stack reuses the port (2004 SOAP clients
// closed politely and serially), i.e. ~3 round trips per block. The
// teardown is charged as the measured connection-setup time, so it scales
// with the actual link rather than a constant.
func (w *Writer) oneCall(reqType uint8, payload []byte) error {
	t0 := w.clock.Now()
	conn, err := w.dialer.Dial(w.addr)
	if err != nil {
		return fmt.Errorf("gridbuffer: dial %s: %w", w.addr, err)
	}
	setup := w.clock.Now().Sub(t0)
	defer func() {
		conn.Close()
		w.clock.Sleep(setup)
	}()
	if err := wire.WriteFrame(conn, reqType, payload); err != nil {
		return err
	}
	typ, resp, err := wire.ReadFrame(bufio.NewReader(conn))
	if err != nil {
		return err
	}
	if typ == msgError {
		return errors.New("gridbuffer: " + wire.NewDecoder(resp).String())
	}
	return nil
}

// ackLoop consumes Put acknowledgements, releasing window permits.
func (w *Writer) ackLoop(br *bufio.Reader) {
	for {
		typ, payload, err := wire.ReadFrame(br)
		if err != nil {
			w.fail(err)
			return
		}
		switch typ {
		case msgPutResp:
			w.window.Release(1)
		case msgCloseWriteResp:
			w.done.Set()
			return
		case msgError:
			w.fail(errors.New("gridbuffer: " + wire.NewDecoder(payload).String()))
			return
		default:
			w.fail(fmt.Errorf("gridbuffer: unexpected writer frame %d", typ))
			return
		}
	}
}

// fail records the first error and unblocks anything waiting.
func (w *Writer) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
	w.window.Release(w.winSize) // unblock senders
	w.done.Set()
}

// Err reports the first transport error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// BlockSize reports the negotiated block size.
func (w *Writer) BlockSize() int { return w.blockSize }

// Write implements io.Writer: bytes accumulate into blocks; each full block
// is sent as soon as the in-flight window permits.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("gridbuffer: write after close")
	}
	if err := w.Err(); err != nil {
		return 0, err
	}
	total := 0
	for len(p) > 0 {
		space := w.blockSize - len(w.partial)
		n := len(p)
		if n > space {
			n = space
		}
		w.partial = append(w.partial, p[:n]...)
		p = p[n:]
		total += n
		if len(w.partial) == w.blockSize {
			if err := w.sendBlock(); err != nil {
				return total, err
			}
		}
	}
	w.total += int64(total)
	return total, nil
}

func (w *Writer) sendBlock() error {
	if w.connPerCall {
		e := wire.NewEncoder()
		e.String(w.key).I64(w.nextIdx).Bytes32(w.partial)
		w.nextIdx++
		w.partial = w.partial[:0]
		if err := w.oneCall(msgPut, e.Bytes()); err != nil {
			w.fail(err)
			return err
		}
		return nil
	}
	w.window.Acquire(1)
	if err := w.Err(); err != nil {
		return err
	}
	e := wire.NewEncoder()
	e.String(w.key).I64(w.nextIdx).Bytes32(w.partial)
	w.nextIdx++
	w.partial = w.partial[:0]
	if err := wire.WriteFrame(w.bw, msgPut, e.Bytes()); err != nil {
		w.fail(err)
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.fail(err)
		return err
	}
	return nil
}

// Close flushes the tail block, waits for all acknowledgements, marks
// end-of-stream and releases the connection.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.partial) > 0 {
		if err := w.sendBlock(); err != nil {
			return err
		}
	}
	if w.connPerCall {
		e := wire.NewEncoder()
		e.String(w.key).I64(w.total)
		if err := w.oneCall(msgCloseWrite, e.Bytes()); err != nil {
			return err
		}
		return w.Err()
	}
	defer w.conn.Close()
	// Wait for every outstanding Put to be acknowledged.
	w.window.Acquire(w.winSize)
	if err := w.Err(); err != nil {
		return err
	}
	e := wire.NewEncoder()
	e.String(w.key).I64(w.total)
	if err := wire.WriteFrame(w.bw, msgCloseWrite, e.Bytes()); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	w.done.Wait()
	return w.Err()
}

// Reader streams a Grid Buffer to an application, prefetching blocks ahead
// of the read position. It implements io.ReadSeekCloser. Reads of blocks
// the writer has not produced yet stall (in simulated or real time) until
// the data arrives — the paper's blocking-read semantics.
type Reader struct {
	clock     simclock.Clock
	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	key       string
	blockSize int
	readerID  int
	depth     int

	inflight []int64 // block indices with pending responses, in order
	nextReq  int64

	pos    int64
	cur    []byte // remainder of the current block at pos
	total  int64  // stream length, or best upper bound so far (-1 unknown)
	closed bool
}

// ReaderOptions tunes a Reader beyond the buffer Options.
type ReaderOptions struct {
	// Depth is the prefetch pipeline depth (0 selects DefaultReaderDepth).
	Depth int
}

// NewReader attaches to (or creates) the buffer key on the service at addr.
func NewReader(dialer Dialer, addr string, clock simclock.Clock, key string, opts Options, ropts ReaderOptions) (*Reader, error) {
	conn, err := dialer.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("gridbuffer: dial %s: %w", addr, err)
	}
	bw := bufio.NewWriter(conn)
	e := wire.NewEncoder()
	e.String(key).U8(roleReader)
	encodeOptions(e, opts)
	if err := wire.WriteFrame(bw, msgAttach, e.Bytes()); err != nil {
		conn.Close()
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	typ, resp, err := wire.ReadFrame(br)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if typ == msgError {
		conn.Close()
		return nil, errors.New("gridbuffer: " + wire.NewDecoder(resp).String())
	}
	d := wire.NewDecoder(resp)
	readerID := int(d.I64())
	blockSize := int(d.U32())
	if err := d.Err(); err != nil {
		conn.Close()
		return nil, err
	}
	depth := ropts.Depth
	if depth <= 0 {
		depth = DefaultReaderDepth
	}
	return &Reader{
		clock: clock, conn: conn, br: br, bw: bw,
		key: key, blockSize: blockSize, readerID: readerID,
		depth: depth, total: -1,
	}, nil
}

// noteTotal tightens the known stream length. EOF responses give upper
// bounds (idx*blockSize); a short block gives the exact length. min() of
// all observations converges on the true total.
func (r *Reader) noteTotal(v int64) {
	if r.total < 0 || v < r.total {
		r.total = v
	}
}

// BlockSize reports the negotiated block size.
func (r *Reader) BlockSize() int { return r.blockSize }

// sendGet queues a Get for block idx.
func (r *Reader) sendGet(idx int64) error {
	e := wire.NewEncoder()
	e.String(r.key).I64(int64(r.readerID)).I64(idx)
	if err := wire.WriteFrame(r.bw, msgGet, e.Bytes()); err != nil {
		return err
	}
	if err := r.bw.Flush(); err != nil {
		return err
	}
	r.inflight = append(r.inflight, idx)
	return nil
}

// recvOne consumes the response for inflight[0].
func (r *Reader) recvOne() (idx int64, data []byte, eof bool, err error) {
	if len(r.inflight) == 0 {
		return 0, nil, false, errors.New("gridbuffer: no in-flight request")
	}
	idx = r.inflight[0]
	typ, payload, err := wire.ReadFrame(r.br)
	if err != nil {
		return idx, nil, false, err
	}
	r.inflight = r.inflight[1:]
	switch typ {
	case msgGetResp:
		d := wire.NewDecoder(payload)
		eof = d.Bool()
		data = append([]byte(nil), d.Bytes32()...)
		return idx, data, eof, d.Err()
	case msgError:
		return idx, nil, false, errors.New("gridbuffer: " + wire.NewDecoder(payload).String())
	default:
		return idx, nil, false, fmt.Errorf("gridbuffer: unexpected reader frame %d", typ)
	}
}

// drain consumes every outstanding response (used before repositioning),
// keeping whatever stream-length information they carry.
func (r *Reader) drain() error {
	for len(r.inflight) > 0 {
		gotIdx, data, eof, err := r.recvOne()
		if err != nil {
			return err
		}
		if eof {
			r.noteTotal(gotIdx * int64(r.blockSize))
		} else if len(data) < r.blockSize {
			r.noteTotal(gotIdx*int64(r.blockSize) + int64(len(data)))
		}
	}
	return nil
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, errors.New("gridbuffer: read after close")
	}
	bs := int64(r.blockSize)
	for len(r.cur) == 0 {
		if r.total >= 0 && r.pos >= r.total {
			return 0, io.EOF
		}
		idx := r.pos / bs
		// Keep the pipeline aligned with the read position.
		if len(r.inflight) > 0 && r.inflight[0] != idx {
			if err := r.drain(); err != nil {
				return 0, err
			}
		}
		if len(r.inflight) == 0 {
			r.nextReq = idx
		}
		for len(r.inflight) < r.depth {
			if r.total >= 0 && r.nextReq*bs >= r.total {
				break
			}
			if err := r.sendGet(r.nextReq); err != nil {
				return 0, err
			}
			r.nextReq++
		}
		if len(r.inflight) == 0 {
			// Nothing requestable below the known end: the position must be
			// at or past it.
			return 0, io.EOF
		}
		gotIdx, data, eof, err := r.recvOne()
		if err != nil {
			return 0, err
		}
		if eof {
			r.noteTotal(gotIdx * bs) // upper bound; loop re-checks pos
			continue
		}
		if len(data) < r.blockSize {
			// A short block is the tail: its end is the exact total.
			r.noteTotal(gotIdx*bs + int64(len(data)))
		}
		off := r.pos - gotIdx*bs
		if off < 0 || off >= int64(len(data)) {
			continue // stale block for an old position; re-check
		}
		r.cur = data[off:]
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	r.pos += int64(n)
	return n, nil
}

// Seek implements io.Seeker. Seeking relative to the end requires the
// stream end to be known (the reader has already observed EOF).
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	if r.closed {
		return 0, errors.New("gridbuffer: seek after close")
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = r.pos
	case io.SeekEnd:
		return 0, errors.New("gridbuffer: seek from end of a stream is not supported")
	default:
		return 0, fmt.Errorf("gridbuffer: bad whence %d", whence)
	}
	npos := base + offset
	if npos < 0 {
		return 0, errors.New("gridbuffer: negative seek")
	}
	if npos != r.pos {
		r.cur = nil
		r.pos = npos
	}
	return npos, nil
}

// Close detaches the reader (best effort) and releases the connection.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	e := wire.NewEncoder()
	e.String(r.key).I64(int64(r.readerID))
	wire.WriteFrame(r.bw, msgDetach, e.Bytes())
	r.bw.Flush()
	return r.conn.Close()
}
