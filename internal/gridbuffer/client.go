package gridbuffer

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"griddles/internal/admit"
	"griddles/internal/retry"
	"griddles/internal/simclock"
	"griddles/internal/wire"
)

// Dialer opens connections to service addresses.
type Dialer interface {
	Dial(addr string) (net.Conn, error)
}

// DefaultWriterWindow bounds the writer's in-flight unacknowledged Puts in
// persistent-connection mode. The paper's Grid Buffer is a Web-Services
// request/response per block, so effective pipelining is shallow — this is
// the knob behind its observed latency sensitivity (Table 5) and is
// deliberately small by default. `go test -bench=AblationTransport` sweeps
// it against the connection-per-call discipline.
const DefaultWriterWindow = 2

// DefaultReaderDepth is the reader's prefetch pipeline depth.
const DefaultReaderDepth = 2

// wblock is one block the writer has sent but the server has not yet
// acknowledged. Acks arrive in send order, so the set is a FIFO; on
// reconnect the whole window replays (the server accepts replayed blocks
// idempotently).
type wblock struct {
	idx  int64
	data []byte
}

// Writer streams an application's sequential writes into a remote Grid
// Buffer as fixed-size blocks. It implements io.WriteCloser.
//
// With a retry policy set (WriterOptions.Retry), the writer survives
// transport faults: it reconnects, replays the unacknowledged block window,
// and continues. Without one it fails fast, as the paper's service did.
type Writer struct {
	clock     simclock.Clock
	conn      net.Conn
	bw        *bufio.Writer
	key       string
	blockSize int
	retry     retry.Policy

	// connection-per-call (SOAP-style) state
	connPerCall bool
	dialer      Dialer
	addr        string
	opts        Options

	// codecName is the codec proposed at every attach; cs is the state the
	// current connection actually negotiated.
	codecName string
	cs        *codecState

	window  *simclock.Semaphore
	winSize int64
	done    *simclock.Event
	batch   int

	mu      sync.Mutex // guards err, broken, gen, unacked
	err     error
	broken  bool
	gen     uint64
	unacked []wblock
	closed  bool

	partial []byte
	pending []wblock // full blocks accumulated for the next batch frame
	nextIdx int64
	total   int64
}

// WriterOptions tunes a Writer beyond the buffer Options.
type WriterOptions struct {
	// Window is the number of unacknowledged in-flight Puts (0 selects
	// DefaultWriterWindow).
	Window int
	// Batch is the number of blocks coalesced into one PUT-BATCH frame
	// (acknowledged once). 0 or 1 keeps the historical one-frame-per-block
	// protocol; larger batches amortize the per-frame round trip and are
	// clamped to the window. Blocks are held client-side until the batch
	// fills (Close flushes a partial batch).
	Batch int
	// Codec names the block codec proposed at attach ("" or "raw" keeps the
	// stream raw and the attach bytes identical to the historical protocol).
	// Connection-per-call mode never negotiates and ignores this.
	Codec string
	// ConnPerCall reproduces the paper's Web-Services transport behaviour:
	// every block is delivered on a fresh, politely closed connection (TCP
	// handshake + request round trip + serialized teardown, ~3 RTTs per
	// block), as 2004 connection-per-call SOAP stacks did. This is
	// dramatically latency-sensitive — the very effect the paper observes
	// on its trans-continental Table 5 rows — and is the default in the
	// experiment harness. Window is ignored in this mode.
	ConnPerCall bool
	// Retry is the resilience policy; the zero policy fails fast.
	Retry retry.Policy
}

// attach dials addr and performs one Attach handshake, returning the open
// connection and the negotiated parameters. prev is the reader ID a
// reconnecting reader resumes (-1 for writers and first attaches); codec,
// if non-raw, is proposed for the stream (see codec.go — the returned name
// is what the server settled on, "" against an old server); dl, if
// non-zero, bounds the whole handshake.
func attach(dialer Dialer, addr string, key string, role uint8, opts Options, prev int, codec string, dl time.Time) (net.Conn, *bufio.Reader, *bufio.Writer, int, int, string, error) {
	conn, err := dialer.Dial(addr)
	if err != nil {
		return nil, nil, nil, 0, 0, "", fmt.Errorf("gridbuffer: dial %s: %w", addr, err)
	}
	if !dl.IsZero() {
		conn.SetDeadline(dl)
	}
	bw := bufio.NewWriter(conn)
	e := wire.NewEncoder()
	e.String(key).U8(role)
	encodeOptions(e, opts)
	e.I64(int64(prev))
	if codec != "" && codec != wire.CodecRaw {
		e.String(codec)
	}
	if err := wire.WriteFrame(bw, msgAttach, e.Bytes()); err != nil {
		conn.Close()
		return nil, nil, nil, 0, 0, "", err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return nil, nil, nil, 0, 0, "", err
	}
	br := bufio.NewReader(conn)
	typ, resp, err := wire.ReadFrame(br)
	if err != nil {
		conn.Close()
		return nil, nil, nil, 0, 0, "", err
	}
	if typ == admit.MsgShed {
		// Stream-setup shed: the service is at its stream limit. The
		// attach-level retry policy waits out the hint and redials.
		conn.Close()
		shed, derr := admit.DecodeShed(resp)
		if derr != nil {
			return nil, nil, nil, 0, 0, "", derr
		}
		return nil, nil, nil, 0, 0, "", shed
	}
	if typ == msgError {
		conn.Close()
		return nil, nil, nil, 0, 0, "", retry.Permanent(errors.New("gridbuffer: " + wire.NewDecoder(resp).String()))
	}
	d := wire.NewDecoder(resp)
	readerID := int(d.I64())
	blockSize := int(d.U32())
	// A codec-capable server echoes its choice; an old server's response
	// ends at blockSize, which means the stream is raw.
	chosen := ""
	if d.Err() == nil && d.Remaining() > 0 {
		chosen = d.String()
	}
	if err := d.Err(); err != nil {
		conn.Close()
		return nil, nil, nil, 0, 0, "", retry.Permanent(err)
	}
	if !dl.IsZero() {
		conn.SetDeadline(time.Time{})
	}
	return conn, br, bw, readerID, blockSize, chosen, nil
}

// newCodecState turns the server's negotiated codec name into a
// connection's codec state (inactive for ""/"raw").
func newCodecState(chosen string) (*codecState, error) {
	codec, err := wire.ForName(chosen)
	if err != nil {
		return nil, retry.Permanent(fmt.Errorf("gridbuffer: server chose %w", err))
	}
	return &codecState{codec: codec}, nil
}

// NewWriter attaches to (or creates) the buffer key on the service at addr
// and returns a Writer.
func NewWriter(dialer Dialer, addr string, clock simclock.Clock, key string, opts Options, wopts WriterOptions) (*Writer, error) {
	codecName := wopts.Codec
	if wopts.ConnPerCall {
		// Conn-per-call data connections skip the Attach exchange, so there
		// is nowhere to negotiate; the paper's SOAP discipline stays raw.
		codecName = ""
	}
	var conn net.Conn
	var br *bufio.Reader
	var bw *bufio.Writer
	var blockSize int
	var chosen string
	err := wopts.Retry.Do("gb.attach", func(int) error {
		var err error
		conn, br, bw, _, blockSize, chosen, err = attach(dialer, addr, key, roleWriter, opts, -1, codecName, wopts.Retry.Deadline())
		return err
	})
	if err != nil {
		return nil, err
	}
	cs, err := newCodecState(chosen)
	if err != nil {
		conn.Close()
		return nil, err
	}
	win := wopts.Window
	if win <= 0 {
		win = DefaultWriterWindow
	}
	batch := wopts.Batch
	if batch <= 0 {
		batch = 1
	}
	if batch > win && !wopts.ConnPerCall {
		batch = win // a batch larger than the window could never be acknowledged
	}
	w := &Writer{
		clock:       clock,
		conn:        conn,
		bw:          bw,
		key:         key,
		blockSize:   blockSize,
		retry:       wopts.Retry,
		connPerCall: wopts.ConnPerCall,
		dialer:      dialer,
		addr:        addr,
		opts:        opts,
		codecName:   codecName,
		cs:          cs,
		window:      simclock.NewSemaphore(clock, int64(win)),
		winSize:     int64(win),
		done:        simclock.NewEvent(clock),
		batch:       batch,
	}
	if w.connPerCall {
		// The construction connection only created the buffer; each block
		// travels on its own connection, so close it now.
		conn.Close()
		w.conn, w.bw = nil, nil
		return w, nil
	}
	w.spawnAckLoop(br)
	return w, nil
}

func (w *Writer) spawnAckLoop(br *bufio.Reader) {
	w.mu.Lock()
	gen := w.gen
	w.mu.Unlock()
	window, done := w.window, w.done
	w.clock.Go("gridbuffer-writer-acks", func() { w.ackLoop(br, window, done, gen) })
}

// oneCall opens a fresh connection, performs a single request/response,
// closes it and waits out the teardown — the 2004 connection-per-call SOAP
// discipline. Per call that is a TCP handshake, one request round trip,
// and a FIN handshake before the stack reuses the port (2004 SOAP clients
// closed politely and serially), i.e. ~3 round trips per block. The
// teardown is charged as the measured connection-setup time, so it scales
// with the actual link rather than a constant.
func (w *Writer) oneCall(reqType uint8, payload []byte) error {
	t0 := w.clock.Now()
	conn, err := w.dialer.Dial(w.addr)
	if err != nil {
		return fmt.Errorf("gridbuffer: dial %s: %w", w.addr, err)
	}
	setup := w.clock.Now().Sub(t0)
	defer func() {
		conn.Close()
		w.clock.Sleep(setup)
	}()
	if dl := w.retry.Deadline(); !dl.IsZero() {
		conn.SetDeadline(dl)
	}
	if err := wire.WriteFrame(conn, reqType, payload); err != nil {
		return err
	}
	typ, resp, err := wire.ReadFrame(bufio.NewReader(conn))
	if err != nil {
		return err
	}
	if typ == admit.MsgShed {
		shed, derr := admit.DecodeShed(resp)
		if derr != nil {
			return derr
		}
		return shed
	}
	if typ == msgError {
		return retry.Permanent(errors.New("gridbuffer: " + wire.NewDecoder(resp).String()))
	}
	return nil
}

// ackLoop consumes Put acknowledgements, releasing window permits. One loop
// runs per connection generation; window/done belong to that generation, so
// a stale loop can never release permits of a successor connection.
func (w *Writer) ackLoop(br *bufio.Reader, window *simclock.Semaphore, done *simclock.Event, gen uint64) {
	var frameBuf []byte
	for {
		typ, payload, err := wire.ReadFrameInto(br, &frameBuf)
		if err != nil {
			w.noteTransport(gen, err)
			window.Release(w.winSize)
			done.Set()
			return
		}
		switch typ {
		case msgPutResp:
			w.popAcked(gen, 1)
			window.Release(1)
		case msgPutBatchResp:
			n := int64(wire.NewDecoder(payload).U32())
			if n < 1 {
				n = 1
			}
			w.popAcked(gen, n)
			window.Release(n)
		case msgCloseWriteResp:
			done.Set()
			return
		case msgError:
			w.failServer(errors.New("gridbuffer: " + wire.NewDecoder(payload).String()))
			window.Release(w.winSize)
			done.Set()
			return
		default:
			w.failServer(fmt.Errorf("gridbuffer: unexpected writer frame %d", typ))
			window.Release(w.winSize)
			done.Set()
			return
		}
	}
}

// popAcked drops the n oldest unacknowledged blocks (acks arrive in send
// order) if the acknowledging connection is still current.
func (w *Writer) popAcked(gen uint64, n int64) {
	w.mu.Lock()
	if w.gen == gen {
		if n > int64(len(w.unacked)) {
			n = int64(len(w.unacked))
		}
		w.unacked = w.unacked[n:]
	}
	w.mu.Unlock()
}

// noteTransport records a transport fault seen by the gen ackLoop: with a
// retry policy the connection is marked broken (the app goroutine
// reconnects); without one it is the writer's terminal error.
func (w *Writer) noteTransport(gen uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.gen != gen {
		return // a stale loop observing its own connection being replaced
	}
	if w.retry.Enabled() {
		w.broken = true
		return
	}
	if w.err == nil {
		w.err = err
	}
}

// failServer records a server-reported error: permanent in every mode.
func (w *Writer) failServer(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

// fail records the first error and unblocks anything waiting.
func (w *Writer) fail(err error) {
	w.failServer(err)
	w.window.Release(w.winSize) // unblock senders
	w.done.Set()
}

// Err reports the first permanent error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *Writer) isBroken() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.broken
}

func (w *Writer) setBroken() {
	w.mu.Lock()
	w.broken = true
	w.mu.Unlock()
}

// BlockSize reports the negotiated block size.
func (w *Writer) BlockSize() int { return w.blockSize }

// Write implements io.Writer: bytes accumulate into blocks; each full block
// is sent as soon as the in-flight window permits.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("gridbuffer: write after close")
	}
	if err := w.Err(); err != nil {
		return 0, err
	}
	total := 0
	for len(p) > 0 {
		space := w.blockSize - len(w.partial)
		n := len(p)
		if n > space {
			n = space
		}
		w.partial = append(w.partial, p[:n]...)
		p = p[n:]
		total += n
		if len(w.partial) == w.blockSize {
			if err := w.sendBlock(); err != nil {
				return total, err
			}
		}
	}
	w.total += int64(total)
	return total, nil
}

// sendBlock queues the filled partial block as the next pending batch
// entry; the batch is flushed to the wire once full (batch == 1 flushes
// every block, the historical protocol).
func (w *Writer) sendBlock() error {
	idx := w.nextIdx
	w.nextIdx++
	data := append([]byte(nil), w.partial...)
	w.partial = w.partial[:0]
	w.pending = append(w.pending, wblock{idx: idx, data: data})
	if len(w.pending) < w.batch {
		return nil
	}
	return w.flushPending()
}

// putFrame encodes blocks as the smallest frame carrying them: the
// historical one-block PUT (byte-identical to the pre-batch protocol), or a
// PUT-BATCH.
func putFrame(e *wire.Encoder, key string, blocks []wblock) uint8 {
	if len(blocks) == 1 {
		e.String(key).I64(blocks[0].idx).Bytes32(blocks[0].data)
		return msgPut
	}
	encodePutBatch(e, key, blocks)
	return msgPutBatch
}

// flushPending delivers the accumulated batch over the configured
// transport discipline.
func (w *Writer) flushPending() error {
	if len(w.pending) == 0 {
		return nil
	}
	blocks := w.pending
	w.pending = nil

	if w.connPerCall {
		e := wire.NewEncoder()
		typ := putFrame(e, w.key, blocks)
		err := w.retry.Do("gb.put", func(int) error { return w.oneCall(typ, e.Bytes()) })
		if err != nil {
			w.fail(err)
			return err
		}
		return nil
	}
	if !w.retry.Enabled() {
		return w.sendOnce(blocks)
	}

	appended := false
	n := int64(len(blocks))
	first := blocks[0].idx
	return w.retry.Do("gb.put", func(int) error {
		if err := w.Err(); err != nil {
			return retry.Permanent(err)
		}
		if w.isBroken() {
			if err := w.reconnect(); err != nil {
				return err
			}
		}
		if appended {
			// The reconnect above replayed these blocks with the rest of
			// the unacknowledged window.
			return nil
		}
		t := w.retry.Timeout()
		if !w.window.AcquireTimeout(n, t) {
			w.setBroken()
			return fmt.Errorf("gridbuffer: put %d: no acknowledgement within %v", first, t)
		}
		if w.isBroken() {
			// The ackLoop died while we waited; the permits belong to the
			// dead window. Reconnect on the next attempt.
			return errors.New("gridbuffer: connection broken")
		}
		w.mu.Lock()
		w.unacked = append(w.unacked, blocks...)
		w.mu.Unlock()
		appended = true
		return w.writeBlocks(blocks)
	})
}

// sendOnce is the historical fail-fast send path.
func (w *Writer) sendOnce(blocks []wblock) error {
	w.window.Acquire(int64(len(blocks)))
	if err := w.Err(); err != nil {
		return err
	}
	w.mu.Lock()
	w.unacked = append(w.unacked, blocks...)
	w.mu.Unlock()
	if err := writePutFrame(w.bw, w.key, blocks, w.cs); err != nil {
		w.fail(err)
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.fail(err)
		return err
	}
	return nil
}

// writeBlocks sends one put frame on the persistent connection under the
// per-attempt write deadline, marking the connection broken on failure.
func (w *Writer) writeBlocks(blocks []wblock) error {
	if t := w.retry.Timeout(); t > 0 {
		w.conn.SetWriteDeadline(w.clock.Now().Add(t))
	}
	if err := writePutFrame(w.bw, w.key, blocks, w.cs); err != nil {
		w.setBroken()
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.setBroken()
		return err
	}
	return nil
}

// writeFrame sends one frame on the persistent connection under the
// per-attempt write deadline, marking the connection broken on failure.
func (w *Writer) writeFrame(typ uint8, payload []byte) error {
	if t := w.retry.Timeout(); t > 0 {
		w.conn.SetWriteDeadline(w.clock.Now().Add(t))
	}
	if err := wire.WriteFrame(w.bw, typ, payload); err != nil {
		w.setBroken()
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.setBroken()
		return err
	}
	return nil
}

// reconnect re-attaches the writer, replays the unacknowledged block
// window, and restarts the ack loop. Only the application goroutine calls
// it.
func (w *Writer) reconnect() error {
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
	conn, br, bw, _, _, chosen, err := attach(w.dialer, w.addr, w.key, roleWriter, w.opts, -1, w.codecName, w.retry.Deadline())
	if err != nil {
		return err
	}
	// The replacement connection renegotiates from scratch — a failover to
	// an older server build downgrades the stream to raw mid-flight.
	cs, err := newCodecState(chosen)
	if err != nil {
		conn.Close()
		return err
	}
	w.mu.Lock()
	w.gen++
	w.broken = false
	replay := make([]wblock, len(w.unacked))
	copy(replay, w.unacked)
	w.mu.Unlock()
	if t := w.retry.Timeout(); t > 0 {
		conn.SetWriteDeadline(w.clock.Now().Add(t))
	}
	for start := 0; start < len(replay); start += w.batch {
		end := start + w.batch
		if end > len(replay) {
			end = len(replay)
		}
		if err := writePutFrame(bw, w.key, replay[start:end], cs); err != nil {
			conn.Close()
			w.setBroken()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		w.setBroken()
		return err
	}
	w.conn, w.bw, w.cs = conn, bw, cs
	avail := w.winSize - int64(len(replay))
	if avail < 0 {
		avail = 0
	}
	w.window = simclock.NewSemaphore(w.clock, avail)
	w.done = simclock.NewEvent(w.clock)
	w.spawnAckLoop(br)
	return nil
}

// Close flushes the tail block, waits for all acknowledgements, marks
// end-of-stream and releases the connection.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.partial) > 0 {
		if err := w.sendBlock(); err != nil {
			return err
		}
	}
	if err := w.flushPending(); err != nil {
		return err
	}
	if w.connPerCall {
		e := wire.NewEncoder()
		e.String(w.key).I64(w.total)
		err := w.retry.Do("gb.close", func(int) error { return w.oneCall(msgCloseWrite, e.Bytes()) })
		if err != nil {
			return err
		}
		return w.Err()
	}
	if !w.retry.Enabled() {
		return w.closeOnce()
	}
	defer func() {
		if w.conn != nil {
			w.conn.Close()
		}
	}()
	t := w.retry.Timeout()
	return w.retry.Do("gb.close", func(int) error {
		if err := w.Err(); err != nil {
			return retry.Permanent(err)
		}
		if w.isBroken() {
			if err := w.reconnect(); err != nil {
				return err
			}
		}
		// Wait for every outstanding Put to be acknowledged.
		if !w.window.AcquireTimeout(w.winSize, t) {
			w.setBroken()
			return errors.New("gridbuffer: close: outstanding puts not acknowledged in time")
		}
		if w.isBroken() {
			return errors.New("gridbuffer: connection broken")
		}
		if err := w.Err(); err != nil {
			return retry.Permanent(err)
		}
		if err := w.writeFrame(msgCloseWrite, wire.NewEncoder().String(w.key).I64(w.total).Bytes()); err != nil {
			return err
		}
		if !w.done.WaitTimeout(t) {
			w.setBroken()
			return errors.New("gridbuffer: close-write not acknowledged in time")
		}
		if err := w.Err(); err != nil {
			return retry.Permanent(err)
		}
		if w.isBroken() {
			return errors.New("gridbuffer: connection broken")
		}
		return nil
	})
}

// closeOnce is the historical fail-fast close path.
func (w *Writer) closeOnce() error {
	defer w.conn.Close()
	// Wait for every outstanding Put to be acknowledged.
	w.window.Acquire(w.winSize)
	if err := w.Err(); err != nil {
		return err
	}
	e := wire.NewEncoder()
	e.String(w.key).I64(w.total)
	if err := wire.WriteFrame(w.bw, msgCloseWrite, e.Bytes()); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	w.done.Wait()
	return w.Err()
}

// Reader streams a Grid Buffer to an application, prefetching blocks ahead
// of the read position. It implements io.ReadSeekCloser. Reads of blocks
// the writer has not produced yet stall (in simulated or real time) until
// the data arrives — the paper's blocking-read semantics.
//
// With a retry policy set (ReaderOptions.Retry), the reader survives
// transport faults: blocks stay resident on the server until the reader
// acknowledges delivery (piggybacked on the next request), so after a
// reconnect it resumes at the current position with nothing lost. The
// per-attempt timeout then also bounds how long the reader tolerates
// silence, so a producer that stalls longer than the policy's attempt
// budget is indistinguishable from a dead one — raise the timeout for
// slow producers.
type Reader struct {
	clock     simclock.Clock
	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	key       string
	blockSize int
	readerID  int
	depth     int
	retry     retry.Policy
	dialer    Dialer
	addr      string
	opts      Options
	broken    bool

	codecName string
	cs        *codecState
	frameBuf  []byte

	inflight []int64 // block indices with pending responses, in order
	nextReq  int64
	acked    int64 // every block < acked has been delivered to the app

	pos    int64
	cur    []byte // remainder of the current block at pos
	total  int64  // stream length, or best upper bound so far (-1 unknown)
	closed bool
}

// ReaderOptions tunes a Reader beyond the buffer Options.
type ReaderOptions struct {
	// Depth is the prefetch pipeline depth (0 selects DefaultReaderDepth).
	Depth int
	// Codec names the block codec proposed at attach ("" or "raw" keeps the
	// stream raw and the attach bytes identical to the historical protocol).
	Codec string
	// Retry is the resilience policy; the zero policy fails fast.
	Retry retry.Policy
}

// NewReader attaches to (or creates) the buffer key on the service at addr.
func NewReader(dialer Dialer, addr string, clock simclock.Clock, key string, opts Options, ropts ReaderOptions) (*Reader, error) {
	var conn net.Conn
	var br *bufio.Reader
	var bw *bufio.Writer
	var readerID, blockSize int
	var chosen string
	err := ropts.Retry.Do("gb.attach", func(int) error {
		var err error
		conn, br, bw, readerID, blockSize, chosen, err = attach(dialer, addr, key, roleReader, opts, -1, ropts.Codec, ropts.Retry.Deadline())
		return err
	})
	if err != nil {
		return nil, err
	}
	cs, err := newCodecState(chosen)
	if err != nil {
		conn.Close()
		return nil, err
	}
	depth := ropts.Depth
	if depth <= 0 {
		depth = DefaultReaderDepth
	}
	return &Reader{
		clock: clock, conn: conn, br: br, bw: bw,
		key: key, blockSize: blockSize, readerID: readerID,
		depth: depth, retry: ropts.Retry,
		dialer: dialer, addr: addr, opts: opts,
		codecName: ropts.Codec, cs: cs,
		total: -1,
	}, nil
}

// noteTotal tightens the known stream length. EOF responses give upper
// bounds (idx*blockSize); a short block gives the exact length. min() of
// all observations converges on the true total.
func (r *Reader) noteTotal(v int64) {
	if r.total < 0 || v < r.total {
		r.total = v
	}
}

// BlockSize reports the negotiated block size.
func (r *Reader) BlockSize() int { return r.blockSize }

// reconnect re-attaches the reader under its previous identity and resets
// the request pipeline; the next fill re-requests from the current
// position, whose blocks the server retained (they were never
// acknowledged).
func (r *Reader) reconnect() error {
	if r.conn != nil {
		r.conn.Close()
	}
	conn, br, bw, id, _, chosen, err := attach(r.dialer, r.addr, r.key, roleReader, r.opts, r.readerID, r.codecName, r.retry.Deadline())
	if err != nil {
		return err
	}
	cs, err := newCodecState(chosen)
	if err != nil {
		conn.Close()
		return err
	}
	r.conn, r.br, r.bw = conn, br, bw
	r.cs = cs
	r.readerID = id
	r.inflight = nil
	r.broken = false
	return nil
}

// sendWindow queues one windowed GET for blocks [first, first+count),
// acknowledging everything already delivered. The server streams one
// response frame per block as each becomes available, so the reader keeps
// count requests outstanding at the cost of a single request frame.
func (r *Reader) sendWindow(first int64, count int) error {
	if t := r.retry.Timeout(); t > 0 {
		r.conn.SetWriteDeadline(r.clock.Now().Add(t))
	}
	e := wire.NewEncoder()
	encodeGetWin(e, getWinReq{
		key: r.key, readerID: r.readerID,
		first: first, count: count, ackBelow: r.acked,
	})
	if err := wire.WriteFrame(r.bw, msgGetWin, e.Bytes()); err != nil {
		return err
	}
	if err := r.bw.Flush(); err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		r.inflight = append(r.inflight, first+int64(i))
	}
	return nil
}

// recvOne consumes the response for inflight[0].
func (r *Reader) recvOne() (idx int64, data []byte, eof bool, err error) {
	if len(r.inflight) == 0 {
		return 0, nil, false, errors.New("gridbuffer: no in-flight request")
	}
	idx = r.inflight[0]
	if t := r.retry.Timeout(); t > 0 {
		r.conn.SetReadDeadline(r.clock.Now().Add(t))
	}
	typ, payload, err := wire.ReadFrameInto(r.br, &r.frameBuf)
	if err != nil {
		return idx, nil, false, err
	}
	r.inflight = r.inflight[1:]
	switch typ {
	case msgGetWinResp:
		d := wire.NewDecoder(payload)
		gotIdx := d.I64()
		eof = d.Bool()
		raw := d.Bytes32()
		if err := d.Err(); err != nil {
			return idx, nil, false, err
		}
		block, derr := r.cs.dec(raw)
		if derr != nil {
			return idx, nil, false, retry.Permanent(derr)
		}
		data = append([]byte(nil), block...)
		if gotIdx != idx {
			return idx, nil, false, retry.Permanent(fmt.Errorf("gridbuffer: response for block %d, expected %d", gotIdx, idx))
		}
		return idx, data, eof, nil
	case msgError:
		return idx, nil, false, retry.Permanent(errors.New("gridbuffer: " + wire.NewDecoder(payload).String()))
	default:
		return idx, nil, false, retry.Permanent(fmt.Errorf("gridbuffer: unexpected reader frame %d", typ))
	}
}

// drain consumes every outstanding response (used before repositioning),
// keeping whatever stream-length information they carry.
func (r *Reader) drain() error {
	for len(r.inflight) > 0 {
		gotIdx, data, eof, err := r.recvOne()
		if err != nil {
			return err
		}
		if eof {
			r.noteTotal(gotIdx * int64(r.blockSize))
		} else if len(data) < r.blockSize {
			r.noteTotal(gotIdx*int64(r.blockSize) + int64(len(data)))
		}
	}
	return nil
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, errors.New("gridbuffer: read after close")
	}
	if !r.retry.Enabled() {
		return r.readOnce(p)
	}
	var n int
	var eof bool
	err := r.retry.Do("gb.get", func(int) error {
		if r.broken {
			if err := r.reconnect(); err != nil {
				return err
			}
		}
		nn, rerr := r.readOnce(p)
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				n, eof = nn, true
				return nil
			}
			if !retry.IsPermanent(rerr) {
				r.broken = true
			}
			return rerr
		}
		n = nn
		return nil
	})
	if err != nil {
		return 0, err
	}
	if eof {
		return n, io.EOF
	}
	return n, nil
}

// readOnce is one fill attempt against the current connection.
func (r *Reader) readOnce(p []byte) (int, error) {
	bs := int64(r.blockSize)
	for len(r.cur) == 0 {
		if r.total >= 0 && r.pos >= r.total {
			return 0, io.EOF
		}
		idx := r.pos / bs
		// Everything below the block holding pos has been delivered; the
		// next request acknowledges it (monotonic: a backward seek re-reads
		// from the cache file, exactly as with eager consumption).
		if idx > r.acked {
			r.acked = idx
		}
		// Keep the pipeline aligned with the read position.
		if len(r.inflight) > 0 && r.inflight[0] != idx {
			if err := r.drain(); err != nil {
				return 0, err
			}
		}
		if len(r.inflight) == 0 {
			r.nextReq = idx
		}
		if want := r.depth - len(r.inflight); want > 0 {
			count := 0
			for count < want {
				if r.total >= 0 && (r.nextReq+int64(count))*bs >= r.total {
					break
				}
				count++
			}
			if count > 0 {
				if err := r.sendWindow(r.nextReq, count); err != nil {
					return 0, err
				}
				r.nextReq += int64(count)
			}
		}
		if len(r.inflight) == 0 {
			// Nothing requestable below the known end: the position must be
			// at or past it.
			return 0, io.EOF
		}
		gotIdx, data, eof, err := r.recvOne()
		if err != nil {
			return 0, err
		}
		if eof {
			r.noteTotal(gotIdx * bs) // upper bound; loop re-checks pos
			continue
		}
		if len(data) < r.blockSize {
			// A short block is the tail: its end is the exact total.
			r.noteTotal(gotIdx*bs + int64(len(data)))
		}
		off := r.pos - gotIdx*bs
		if off < 0 || off >= int64(len(data)) {
			continue // stale block for an old position; re-check
		}
		r.cur = data[off:]
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	r.pos += int64(n)
	return n, nil
}

// Seek implements io.Seeker. Seeking relative to the end requires the
// stream end to be known (the reader has already observed EOF).
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	if r.closed {
		return 0, errors.New("gridbuffer: seek after close")
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = r.pos
	case io.SeekEnd:
		return 0, errors.New("gridbuffer: seek from end of a stream is not supported")
	default:
		return 0, fmt.Errorf("gridbuffer: bad whence %d", whence)
	}
	npos := base + offset
	if npos < 0 {
		return 0, errors.New("gridbuffer: negative seek")
	}
	if npos != r.pos {
		r.cur = nil
		r.pos = npos
	}
	return npos, nil
}

// Close detaches the reader (best effort) and releases the connection.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	e := wire.NewEncoder()
	e.String(r.key).I64(int64(r.readerID))
	wire.WriteFrame(r.bw, msgDetach, e.Bytes())
	r.bw.Flush()
	return r.conn.Close()
}
