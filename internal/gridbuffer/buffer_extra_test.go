package gridbuffer

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"griddles/internal/simclock"
	"griddles/internal/simnet"
	"griddles/internal/vfs"
)

// TestBufferPutEdgeCases walks the Put state machine directly: bad index,
// replay overwrite of a resident block, put-after-close-write, and
// put-after-drop.
func TestBufferPutEdgeCases(t *testing.T) {
	b := NewBuffer(simclock.Real{}, "k", Options{BlockSize: 4})
	b.Attach()
	if err := b.Put(-1, []byte("x")); err == nil {
		t.Error("negative index accepted")
	}
	if err := b.Put(0, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	// A replayed put of a resident block overwrites in place, no stall.
	if err := b.Put(0, []byte("bbbb")); err != nil {
		t.Errorf("replay overwrite: %v", err)
	}
	if err := b.Put(1, []byte("cc")); err != nil {
		t.Fatal(err)
	}
	if err := b.CloseWrite(6); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(2, []byte("dd")); err == nil {
		t.Error("put after close-write accepted")
	}
	b.Drop()
	if err := b.Put(3, []byte("ee")); !errors.Is(err, ErrStopped) {
		t.Errorf("put after drop: %v, want ErrStopped", err)
	}
	b.Drop() // second drop is a no-op, not a panic
}

// TestBufferCachePathOption: an explicit CachePath names the spill file;
// the default derives from the key.
func TestBufferCachePathOption(t *testing.T) {
	fs := vfs.NewMemFS()
	b := NewBuffer(simclock.Real{}, "k", Options{
		BlockSize: 4, Cache: true, CacheFS: fs, CachePath: "/spill/custom",
	})
	if got := b.cachePath(); got != "/spill/custom" {
		t.Errorf("cachePath() = %q", got)
	}
	d := NewBuffer(simclock.Real{}, "k2", Options{BlockSize: 4, Cache: true, CacheFS: fs})
	if got := d.cachePath(); got != ".gridbuffer-cache/k2" {
		t.Errorf("default cachePath() = %q", got)
	}
	// Exercise the spill-and-drop path so the custom file really is used.
	id := d.Attach()
	d.Put(0, []byte("aaaa"))
	if data, _, err := d.Get(id, 0); err != nil || !bytes.Equal(data, []byte("aaaa")) {
		t.Fatalf("get: %q %v", data, err)
	}
	d.Drop()
}

// TestReaderSeekErrors: the stream reader documents its seek contract —
// no SeekEnd, no negative target, no bad whence, no seek after close.
func TestReaderSeekErrors(t *testing.T) {
	b := newBrig(simnet.LinkSpec{})
	b.v.Run(func() {
		b.start(t)
		w, _ := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{}, WriterOptions{})
		w.Write([]byte("hello"))
		w.Close()
		r, err := NewReader(b.net.Host("r"), b.addr, b.v, "k", Options{}, ReaderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Seek(0, io.SeekEnd); err == nil {
			t.Error("SeekEnd accepted on a stream")
		}
		if _, err := r.Seek(-1, io.SeekStart); err == nil {
			t.Error("negative seek accepted")
		}
		if _, err := r.Seek(0, 99); err == nil {
			t.Error("bad whence accepted")
		}
		if pos, err := r.Seek(2, io.SeekCurrent); err != nil || pos != 2 {
			t.Errorf("SeekCurrent: pos=%d err=%v", pos, err)
		}
		rest, _ := io.ReadAll(r)
		if string(rest) != "llo" {
			t.Errorf("after seek(2): %q", rest)
		}
		r.Close()
		if _, err := r.Seek(0, io.SeekStart); err == nil {
			t.Error("seek after close accepted")
		}
		if err := r.Close(); err != nil {
			t.Errorf("second close: %v", err)
		}
	})
}

// TestWriterDoubleClose: closing a writer twice is idempotent, and writes
// after close fail.
func TestWriterDoubleClose(t *testing.T) {
	b := newBrig(simnet.LinkSpec{})
	b.v.Run(func() {
		b.start(t)
		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{}, WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		w.Write([]byte("data"))
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Errorf("second close: %v", err)
		}
		if _, err := w.Write([]byte("late")); err == nil {
			t.Error("write after close accepted")
		}
		r, _ := NewReader(b.net.Host("r"), b.addr, b.v, "k", Options{}, ReaderOptions{})
		defer r.Close()
		got, _ := io.ReadAll(r)
		if string(got) != "data" {
			t.Errorf("stream = %q", got)
		}
	})
}
