package gridbuffer

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"

	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/vfs"
	"griddles/internal/wire"
)

// Protocol message types (binary transport; internal/soap carries the same
// operations in SOAP envelopes).
const (
	msgAttach         = 1
	msgAttachResp     = 2
	msgPut            = 3
	msgPutResp        = 4
	msgGet            = 5
	msgGetResp        = 6
	msgCloseWrite     = 7
	msgCloseWriteResp = 8
	msgDetach         = 9
	msgDetachResp     = 10
	msgDrop           = 11
	msgDropResp       = 12
	msgError          = 255
)

// Roles in an Attach request.
const (
	roleWriter = 0
	roleReader = 1
)

// Registry owns the named buffers of one Grid Buffer service instance.
type Registry struct {
	clock   simclock.Clock
	cacheFS vfs.FS

	mu      sync.Mutex
	obs     *obs.Observer
	buffers map[string]*Buffer
}

// NewRegistry returns an empty Registry. cacheFS (may be nil) hosts cache
// files for buffers that enable them — on a testbed machine this is the
// machine's disk-cost-accounted file system.
func NewRegistry(clock simclock.Clock, cacheFS vfs.FS) *Registry {
	return &Registry{clock: clock, cacheFS: cacheFS, buffers: make(map[string]*Buffer)}
}

// SetObserver routes metrics of all buffers — current and future — to o;
// nil discards them.
func (r *Registry) SetObserver(o *obs.Observer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.obs = o
	for _, b := range r.buffers {
		b.SetObserver(o)
	}
}

// GetOrCreate returns the buffer named key, creating it with opts on first
// use. Options of later attachers are ignored: the first attach wins, which
// is safe because writer and readers receive the same GNS mapping.
func (r *Registry) GetOrCreate(key string, opts Options) *Buffer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.buffers[key]; ok {
		return b
	}
	if opts.Cache && opts.CacheFS == nil {
		opts.CacheFS = r.cacheFS
	}
	b := NewBuffer(r.clock, key, opts)
	if r.obs != nil {
		b.SetObserver(r.obs)
	}
	r.buffers[key] = b
	return b
}

// Lookup returns the buffer named key, if present.
func (r *Registry) Lookup(key string) (*Buffer, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.buffers[key]
	return b, ok
}

// Drop removes and aborts the buffer named key.
func (r *Registry) Drop(key string) {
	r.mu.Lock()
	b, ok := r.buffers[key]
	delete(r.buffers, key)
	r.mu.Unlock()
	if ok {
		b.Drop()
	}
}

// Len reports the number of live buffers.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buffers)
}

// Server exposes a Registry over the framed binary protocol.
type Server struct {
	reg   *Registry
	clock simclock.Clock
}

// NewServer returns a Server for reg.
func NewServer(reg *Registry, clock simclock.Clock) *Server {
	return &Server{reg: reg, clock: clock}
}

// Registry returns the served registry.
func (s *Server) Registry() *Registry { return s.reg }

// Serve accepts connections until l is closed.
func (s *Server) Serve(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.clock.Go("gridbuffer-conn", func() { s.handle(conn) })
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		typ, payload, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		if err := s.dispatch(bw, typ, payload); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func decodeOptions(d *wire.Decoder) Options {
	var o Options
	o.BlockSize = int(d.U32())
	o.Capacity = int(d.U32())
	o.Cache = d.Bool()
	o.CachePath = d.String()
	o.Readers = int(d.U32())
	return o
}

func encodeOptions(e *wire.Encoder, o Options) {
	e.U32(uint32(o.BlockSize))
	e.U32(uint32(o.Capacity))
	e.Bool(o.Cache)
	e.String(o.CachePath)
	e.U32(uint32(o.Readers))
}

func (s *Server) dispatch(w io.Writer, typ uint8, payload []byte) error {
	d := wire.NewDecoder(payload)
	switch typ {
	case msgAttach:
		key := d.String()
		role := d.U8()
		opts := decodeOptions(d)
		// prev is the reader ID of an earlier attach this request resumes
		// (-1 for a first attach), so a reconnected reader keeps its
		// identity in broadcast accounting.
		prev := int(d.I64())
		if err := d.Err(); err != nil {
			return writeError(w, err)
		}
		b := s.reg.GetOrCreate(key, opts)
		readerID := -1
		if role == roleReader {
			readerID = b.Reattach(prev)
		}
		e := wire.NewEncoder()
		e.I64(int64(readerID)).U32(uint32(b.BlockSize()))
		return wire.WriteFrame(w, msgAttachResp, e.Bytes())

	case msgPut:
		key := d.String()
		idx := d.I64()
		data := d.Bytes32()
		if err := d.Err(); err != nil {
			return writeError(w, err)
		}
		b, ok := s.reg.Lookup(key)
		if !ok {
			return writeError(w, fmt.Errorf("gridbuffer: no buffer %q", key))
		}
		if err := b.Put(idx, data); err != nil {
			return writeError(w, err)
		}
		return wire.WriteFrame(w, msgPutResp, nil)

	case msgGet:
		key := d.String()
		readerID := int(d.I64())
		idx := d.I64()
		// ackBelow acknowledges safe receipt of every block < ackBelow; the
		// requested block itself stays resident until a later ack, so a
		// response lost on the wire can be re-requested after reconnect.
		ackBelow := d.I64()
		if err := d.Err(); err != nil {
			return writeError(w, err)
		}
		b, ok := s.reg.Lookup(key)
		if !ok {
			return writeError(w, fmt.Errorf("gridbuffer: no buffer %q", key))
		}
		if ackBelow > 0 {
			b.AckBelow(readerID, ackBelow)
		}
		data, eof, err := b.GetKeep(readerID, idx)
		if err != nil {
			return writeError(w, err)
		}
		e := wire.NewEncoder()
		e.Bool(eof).Bytes32(data)
		return wire.WriteFrame(w, msgGetResp, e.Bytes())

	case msgCloseWrite:
		key := d.String()
		total := d.I64()
		if err := d.Err(); err != nil {
			return writeError(w, err)
		}
		b, ok := s.reg.Lookup(key)
		if !ok {
			return writeError(w, fmt.Errorf("gridbuffer: no buffer %q", key))
		}
		if err := b.CloseWrite(total); err != nil {
			return writeError(w, err)
		}
		return wire.WriteFrame(w, msgCloseWriteResp, nil)

	case msgDetach:
		key := d.String()
		readerID := int(d.I64())
		if err := d.Err(); err != nil {
			return writeError(w, err)
		}
		if b, ok := s.reg.Lookup(key); ok {
			b.Detach(readerID)
		}
		return wire.WriteFrame(w, msgDetachResp, nil)

	case msgDrop:
		key := d.String()
		if err := d.Err(); err != nil {
			return writeError(w, err)
		}
		s.reg.Drop(key)
		return wire.WriteFrame(w, msgDropResp, nil)

	default:
		return writeError(w, fmt.Errorf("gridbuffer: unknown message type %d", typ))
	}
}

func writeError(w io.Writer, err error) error {
	return wire.WriteFrame(w, msgError, wire.NewEncoder().String(err.Error()).Bytes())
}
