package gridbuffer

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"griddles/internal/admit"
	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/vfs"
	"griddles/internal/wire"
)

// Protocol message types (binary transport; internal/soap carries the same
// operations in SOAP envelopes).
const (
	msgAttach         = 1
	msgAttachResp     = 2
	msgPut            = 3
	msgPutResp        = 4
	msgGet            = 5
	msgGetResp        = 6
	msgCloseWrite     = 7
	msgCloseWriteResp = 8
	msgDetach         = 9
	msgDetachResp     = 10
	msgDrop           = 11
	msgDropResp       = 12
	// Pipelined extensions: a PUT-BATCH carries several blocks in one frame
	// and is acknowledged once; a windowed GET asks for a run of blocks and
	// receives one response frame per block, flushed as each becomes
	// available, so a reader keeps N requests outstanding without N frames.
	msgPutBatch     = 13
	msgPutBatchResp = 14
	msgGetWin       = 15
	msgGetWinResp   = 16
	msgError        = 255
)

// Roles in an Attach request.
const (
	roleWriter = 0
	roleReader = 1
)

// Registry owns the named buffers of one Grid Buffer service instance.
type Registry struct {
	clock   simclock.Clock
	cacheFS vfs.FS

	mu        sync.RWMutex
	obs       *obs.Observer
	buffers   map[string]*Buffer
	defShards int // applied when creating options leave Shards zero

	windowDepth atomic.Pointer[obs.Histogram]
}

// NewRegistry returns an empty Registry. cacheFS (may be nil) hosts cache
// files for buffers that enable them — on a testbed machine this is the
// machine's disk-cost-accounted file system.
func NewRegistry(clock simclock.Clock, cacheFS vfs.FS) *Registry {
	r := &Registry{clock: clock, cacheFS: cacheFS, buffers: make(map[string]*Buffer)}
	r.windowDepth.Store((*obs.Observer)(nil).Histogram("buf.window.depth"))
	return r
}

// SetObserver routes metrics of all buffers — current and future — to o;
// nil discards them.
func (r *Registry) SetObserver(o *obs.Observer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.obs = o
	r.windowDepth.Store(o.Histogram("buf.window.depth"))
	for _, b := range r.buffers {
		b.SetObserver(o)
	}
}

// SetDefaultShards sets the block-table shard count applied to buffers
// whose creating options leave Shards zero (the usual case: clients rarely
// override it). Zero restores DefaultShards.
func (r *Registry) SetDefaultShards(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.defShards = n
}

// GetOrCreate returns the buffer named key, creating it with opts on first
// use. Options of later attachers are ignored: the first attach wins, which
// is safe because writer and readers receive the same GNS mapping.
func (r *Registry) GetOrCreate(key string, opts Options) *Buffer {
	r.mu.RLock()
	b, ok := r.buffers[key]
	r.mu.RUnlock()
	if ok {
		return b
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.buffers[key]; ok {
		return b
	}
	if opts.Cache && opts.CacheFS == nil {
		opts.CacheFS = r.cacheFS
	}
	if opts.Shards == 0 {
		opts.Shards = r.defShards
	}
	b = NewBuffer(r.clock, key, opts)
	if r.obs != nil {
		b.SetObserver(r.obs)
	}
	r.buffers[key] = b
	return b
}

// Lookup returns the buffer named key, if present.
func (r *Registry) Lookup(key string) (*Buffer, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.buffers[key]
	return b, ok
}

// Drop removes and aborts the buffer named key.
func (r *Registry) Drop(key string) {
	r.mu.Lock()
	b, ok := r.buffers[key]
	delete(r.buffers, key)
	r.mu.Unlock()
	if ok {
		b.Drop()
	}
}

// Len reports the number of live buffers.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.buffers)
}

// Server exposes a Registry over the framed binary protocol.
type Server struct {
	reg    *Registry
	clock  simclock.Clock
	adm    *admit.Controller
	codecs []string
}

// NewServer returns a Server for reg.
func NewServer(reg *Registry, clock simclock.Clock) *Server {
	return &Server{reg: reg, clock: clock}
}

// Registry returns the served registry.
func (s *Server) Registry() *Registry { return s.reg }

// SetAdmission installs an admission controller; nil (the default) admits
// everything, preserving the unprotected server's behaviour bit for bit.
//
// Buffer admission is per stream, not per request: a connection's first
// Attach acquires one Bulk slot that is held until the connection closes.
// Mid-stream requests (put, get, acks) are never shed — shedding them would
// tear holes in the keep-until-ack replay protocol — so overload is pushed
// to stream setup, where a shed composes cleanly with the client's
// attach-level retry.
func (s *Server) SetAdmission(c *admit.Controller) { s.adm = c }

// SetCodecs restricts the block codecs this server will negotiate (the
// daemon's -codecs flag). Empty (the default) accepts everything this build
// supports; raw is always available regardless.
func (s *Server) SetCodecs(names []string) { s.codecs = names }

// Serve accepts connections until l is closed. Temporary accept failures
// are ridden out with backoff instead of killing the server.
func (s *Server) Serve(l net.Listener) {
	backoff := admit.NewAcceptBackoff(s.clock)
	for {
		conn, err := l.Accept()
		if err != nil {
			if admit.Temporary(err) {
				backoff.Sleep()
				continue
			}
			return
		}
		backoff.Reset()
		crel, ok := s.adm.AdmitConn()
		if !ok {
			conn.Close()
			continue
		}
		s.clock.Go("gridbuffer-conn", func() {
			defer crel()
			s.handle(conn)
		})
	}
}

func (s *Server) handle(conn net.Conn) {
	// admitted is the stream slot taken by this connection's first Attach,
	// released when the connection goes away.
	var admitted func()
	defer func() {
		conn.Close()
		if admitted != nil {
			admitted()
		}
	}()
	tenant := admit.TenantOf(conn)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	cs := &codecState{}
	var frameBuf []byte
	for {
		typ, payload, err := wire.ReadFrameInto(br, &frameBuf)
		if err != nil {
			return
		}
		if typ == msgAttach && admitted == nil {
			rel, aerr := s.adm.Acquire(tenant, admit.Bulk)
			if aerr != nil {
				if err := writeShed(bw, aerr); err != nil {
					return
				}
				if err := bw.Flush(); err != nil {
					return
				}
				continue
			}
			admitted = rel
		}
		if err := s.dispatch(bw, typ, payload, cs); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// writeShed answers one request with a shed frame (or a plain error frame
// when err is not a shed), leaving the connection usable.
func writeShed(w io.Writer, err error) error {
	var shed *admit.ShedError
	if errors.As(err, &shed) {
		return admit.WriteShed(w, shed)
	}
	return writeError(w, err)
}

func decodeOptions(d *wire.Decoder) Options {
	var o Options
	o.BlockSize = int(d.U32())
	o.Capacity = int(d.U32())
	o.Cache = d.Bool()
	o.CachePath = d.String()
	o.Readers = int(d.U32())
	o.Shards = int(d.U32())
	return o
}

func encodeOptions(e *wire.Encoder, o Options) {
	e.U32(uint32(o.BlockSize))
	e.U32(uint32(o.Capacity))
	e.Bool(o.Cache)
	e.String(o.CachePath)
	e.U32(uint32(o.Readers))
	e.U32(uint32(o.Shards))
}

// putBatchReq is a decoded PUT-BATCH frame.
type putBatchReq struct {
	key    string
	blocks []wblock
}

// maxBatchBlocks bounds the per-frame block count a decoder will accept,
// protecting the server from a hostile count field (the frame size itself
// is already bounded by wire.MaxFrame).
const maxBatchBlocks = 4096

func encodePutBatch(e *wire.Encoder, key string, blocks []wblock) {
	e.String(key)
	e.U32(uint32(len(blocks)))
	for _, blk := range blocks {
		e.I64(blk.idx)
		e.Bytes32(blk.data)
	}
}

func decodePutBatch(d *wire.Decoder) (putBatchReq, error) {
	var r putBatchReq
	r.key = d.String()
	n := d.U32()
	if err := d.Err(); err != nil {
		return r, err
	}
	if n > maxBatchBlocks {
		return r, fmt.Errorf("gridbuffer: put-batch of %d blocks exceeds limit %d", n, maxBatchBlocks)
	}
	r.blocks = make([]wblock, 0, n)
	for i := uint32(0); i < n; i++ {
		idx := d.I64()
		data := d.Bytes32()
		if err := d.Err(); err != nil {
			return r, err
		}
		r.blocks = append(r.blocks, wblock{idx: idx, data: data})
	}
	return r, d.Err()
}

// getWinReq is a decoded windowed-GET frame: blocks [first, first+count)
// for readerID, acknowledging everything below ackBelow.
type getWinReq struct {
	key      string
	readerID int
	first    int64
	count    int
	ackBelow int64
}

func encodeGetWin(e *wire.Encoder, r getWinReq) {
	e.String(r.key)
	e.I64(int64(r.readerID))
	e.I64(r.first)
	e.U32(uint32(r.count))
	e.I64(r.ackBelow)
}

func decodeGetWin(d *wire.Decoder) (getWinReq, error) {
	var r getWinReq
	r.key = d.String()
	r.readerID = int(d.I64())
	r.first = d.I64()
	r.count = int(d.U32())
	r.ackBelow = d.I64()
	if err := d.Err(); err != nil {
		return r, err
	}
	if r.count < 0 || r.count > maxBatchBlocks {
		return r, fmt.Errorf("gridbuffer: get window of %d blocks exceeds limit %d", r.count, maxBatchBlocks)
	}
	return r, nil
}

func (s *Server) dispatch(bw *bufio.Writer, typ uint8, payload []byte, cs *codecState) error {
	var w io.Writer = bw
	d := wire.NewDecoder(payload)
	switch typ {
	case msgAttach:
		key := d.String()
		role := d.U8()
		opts := decodeOptions(d)
		// prev is the reader ID of an earlier attach this request resumes
		// (-1 for a first attach), so a reconnected reader keeps its
		// identity in broadcast accounting.
		prev := int(d.I64())
		// A codec-capable client appends the codec it wants; the historical
		// request ends at prev, so absence means a raw stream.
		reqCodec := ""
		if d.Err() == nil && d.Remaining() > 0 {
			reqCodec = d.String()
		}
		if err := d.Err(); err != nil {
			return writeError(w, err)
		}
		b := s.reg.GetOrCreate(key, opts)
		readerID := -1
		if role == roleReader {
			readerID = b.Reattach(prev)
		}
		e := wire.NewEncoder()
		e.I64(int64(readerID)).U32(uint32(b.BlockSize()))
		if reqCodec != "" {
			chosen := wire.NegotiateCodec(reqCodec, s.codecs)
			codec, err := wire.ForName(chosen)
			if err != nil {
				return writeError(w, err)
			}
			cs.codec = codec
			e.String(chosen)
		}
		return wire.WriteFrame(w, msgAttachResp, e.Bytes())

	case msgPut:
		key := d.String()
		idx := d.I64()
		data := d.Bytes32()
		if err := d.Err(); err != nil {
			return writeError(w, err)
		}
		data, derr := cs.dec(data)
		if derr != nil {
			return writeError(w, derr)
		}
		b, ok := s.reg.Lookup(key)
		if !ok {
			return writeError(w, fmt.Errorf("gridbuffer: no buffer %q", key))
		}
		if err := b.Put(idx, data); err != nil {
			return writeError(w, err)
		}
		return wire.WriteFrame(w, msgPutResp, nil)

	case msgPutBatch:
		req, err := decodePutBatch(d)
		if err != nil {
			return writeError(w, err)
		}
		b, ok := s.reg.Lookup(req.key)
		if !ok {
			return writeError(w, fmt.Errorf("gridbuffer: no buffer %q", req.key))
		}
		for _, blk := range req.blocks {
			data, derr := cs.dec(blk.data)
			if derr != nil {
				return writeError(w, derr)
			}
			if err := b.Put(blk.idx, data); err != nil {
				return writeError(w, err)
			}
		}
		e := wire.NewEncoder()
		e.U32(uint32(len(req.blocks)))
		return wire.WriteFrame(w, msgPutBatchResp, e.Bytes())

	case msgGet:
		key := d.String()
		readerID := int(d.I64())
		idx := d.I64()
		// ackBelow acknowledges safe receipt of every block < ackBelow; the
		// requested block itself stays resident until a later ack, so a
		// response lost on the wire can be re-requested after reconnect.
		ackBelow := d.I64()
		if err := d.Err(); err != nil {
			return writeError(w, err)
		}
		b, ok := s.reg.Lookup(key)
		if !ok {
			return writeError(w, fmt.Errorf("gridbuffer: no buffer %q", key))
		}
		if ackBelow > 0 {
			b.AckBelow(readerID, ackBelow)
		}
		data, eof, err := b.GetKeep(readerID, idx)
		if err != nil {
			return writeError(w, err)
		}
		out := cs.enc(data)
		e := wire.NewEncoder()
		e.Bool(eof).U32(uint32(len(out)))
		err = wire.WriteFrameV(w, msgGetResp, e.Bytes(), out)
		b.Recycle(data)
		return err

	case msgGetWin:
		req, err := decodeGetWin(d)
		if err != nil {
			return writeError(w, err)
		}
		b, ok := s.reg.Lookup(req.key)
		if !ok {
			return writeError(w, fmt.Errorf("gridbuffer: no buffer %q", req.key))
		}
		if req.ackBelow > 0 {
			b.AckBelow(req.readerID, req.ackBelow)
		}
		s.reg.windowDepth.Load().Observe(int64(req.count))
		// One response frame per block, flushed as the block becomes
		// available: the blocking read of block k overlaps the delivery of
		// blocks < k, which is what kills the one-block-per-RTT ceiling.
		// The block payload is written vectored, straight from the buffer
		// (or the connection's compression arena) — no per-block assembly
		// copy, no per-block allocation.
		e := wire.NewEncoder()
		for i := 0; i < req.count; i++ {
			idx := req.first + int64(i)
			data, eof, err := b.GetKeep(req.readerID, idx)
			if err != nil {
				return writeError(w, err)
			}
			out := cs.enc(data)
			e.Reset()
			e.I64(idx).Bool(eof).U32(uint32(len(out)))
			err = wire.WriteFrameV(bw, msgGetWinResp, e.Bytes(), out)
			b.Recycle(data)
			if err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		}
		return nil

	case msgCloseWrite:
		key := d.String()
		total := d.I64()
		if err := d.Err(); err != nil {
			return writeError(w, err)
		}
		b, ok := s.reg.Lookup(key)
		if !ok {
			return writeError(w, fmt.Errorf("gridbuffer: no buffer %q", key))
		}
		if err := b.CloseWrite(total); err != nil {
			return writeError(w, err)
		}
		return wire.WriteFrame(w, msgCloseWriteResp, nil)

	case msgDetach:
		key := d.String()
		readerID := int(d.I64())
		if err := d.Err(); err != nil {
			return writeError(w, err)
		}
		if b, ok := s.reg.Lookup(key); ok {
			b.Detach(readerID)
		}
		return wire.WriteFrame(w, msgDetachResp, nil)

	case msgDrop:
		key := d.String()
		if err := d.Err(); err != nil {
			return writeError(w, err)
		}
		s.reg.Drop(key)
		return wire.WriteFrame(w, msgDropResp, nil)

	default:
		return writeError(w, fmt.Errorf("gridbuffer: unknown message type %d", typ))
	}
}

func writeError(w io.Writer, err error) error {
	return wire.WriteFrame(w, msgError, wire.NewEncoder().String(err.Error()).Bytes())
}
