package gridbuffer

import (
	"io"
	"testing"
	"time"

	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/simnet"
	"griddles/internal/wire"
)

// TestRegistryDefaultShards: a server-side -shards default applies to
// buffers whose creating options leave Shards zero, and is rounded up to a
// power of two; explicit client options still win.
func TestRegistryDefaultShards(t *testing.T) {
	b := newBrig(simnet.LinkSpec{})
	b.reg.SetDefaultShards(6)
	buf := b.reg.GetOrCreate("defaulted", Options{})
	if got := buf.Shards(); got != 8 {
		t.Errorf("defaulted buffer has %d shards, want 8 (6 rounded up)", got)
	}
	if buf.Key() != "defaulted" {
		t.Errorf("Key() = %q", buf.Key())
	}
	explicit := b.reg.GetOrCreate("explicit", Options{Shards: 2})
	if got := explicit.Shards(); got != 2 {
		t.Errorf("explicit buffer has %d shards, want 2", got)
	}
	b.reg.SetDefaultShards(0)
	restored := b.reg.GetOrCreate("restored", Options{})
	if got := restored.Shards(); got != DefaultShards {
		t.Errorf("after reset: %d shards, want DefaultShards=%d", got, DefaultShards)
	}
}

// TestClientBlockSizeNegotiated: both endpoints report the block size the
// attach handshake negotiated (the first attacher's options win).
func TestClientBlockSizeNegotiated(t *testing.T) {
	b := newBrig(simnet.LinkSpec{})
	b.v.Run(func() {
		b.start(t)
		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{BlockSize: 512}, WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if w.BlockSize() != 512 {
			t.Errorf("writer BlockSize() = %d, want 512", w.BlockSize())
		}
		// The reader asks for a different size and must be overruled.
		r, err := NewReader(b.net.Host("r"), b.addr, b.v, "k", Options{BlockSize: 4096}, ReaderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r.BlockSize() != 512 {
			t.Errorf("reader BlockSize() = %d, want 512", r.BlockSize())
		}
		w.Write([]byte("x"))
		w.Close()
		io.Copy(io.Discard, r)
		r.Close()
	})
}

// TestRegistryObserverMetrics: wiring an observer exposes the shard gauge
// and the windowed-GET depth histogram for served traffic.
func TestRegistryObserverMetrics(t *testing.T) {
	b := newBrig(simnet.LinkSpec{Latency: time.Millisecond})
	o := obs.New(b.v)
	b.reg.SetObserver(o)
	b.v.Run(func() {
		b.start(t)
		done := simclock.NewWaitGroup(b.v)
		done.Add(1)
		b.v.Go("reader", func() {
			defer done.Done()
			r, err := NewReader(b.net.Host("r"), b.addr, b.v, "k", Options{}, ReaderOptions{Depth: 4})
			if err != nil {
				t.Error(err)
				return
			}
			defer r.Close()
			io.Copy(io.Discard, r)
		})
		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{}, WriterOptions{Window: 4})
		if err != nil {
			t.Fatal(err)
		}
		w.Write(make([]byte, 64*1024))
		w.Close()
		done.Wait()
	})
	snap := o.Snapshot()
	if got := snap.Gauges[obs.Key("buf.shard.count", "key", "k")]; got != int64(DefaultShards) {
		t.Errorf("buf.shard.count gauge = %d, want %d", got, DefaultShards)
	}
	h, ok := snap.Histograms["buf.window.depth"]
	if !ok || h.Count == 0 {
		t.Errorf("buf.window.depth histogram missing or empty: %+v", h)
	}
}

// rawCall dials the buffer service directly and plays one frame, returning
// the response type. It lets tests reach server error paths that the real
// client never produces.
func rawCall(t *testing.T, b *brig, typ uint8, payload []byte) (uint8, []byte) {
	t.Helper()
	conn, err := b.net.Host("w").Dial(b.addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, typ, payload); err != nil {
		t.Fatalf("write frame: %v", err)
	}
	rtyp, rpayload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return rtyp, rpayload
}

// TestServerRejectsMalformedFrames: unknown message types, truncated
// payloads and over-limit batch counts all come back as msgError frames
// instead of killing the server.
func TestServerRejectsMalformedFrames(t *testing.T) {
	b := newBrig(simnet.LinkSpec{})
	b.v.Run(func() {
		b.start(t)
		if typ, _ := rawCall(t, b, 99, nil); typ != msgError {
			t.Errorf("unknown type: got response %d, want msgError", typ)
		}
		// A PUT against a key nobody attached.
		e := wire.NewEncoder()
		e.String("ghost").I64(0).Bytes32([]byte("data"))
		if typ, _ := rawCall(t, b, msgPut, e.Bytes()); typ != msgError {
			t.Errorf("put to unknown buffer: got %d, want msgError", typ)
		}
		// A truncated attach payload.
		if typ, _ := rawCall(t, b, msgAttach, []byte{1}); typ != msgError {
			t.Errorf("truncated attach: got %d, want msgError", typ)
		}
		// A batch whose count field exceeds the hard limit.
		e = wire.NewEncoder()
		e.String("k").U32(maxBatchBlocks + 1)
		if typ, _ := rawCall(t, b, msgPutBatch, e.Bytes()); typ != msgError {
			t.Errorf("oversized batch: got %d, want msgError", typ)
		}
		// A windowed GET with a hostile count.
		e = wire.NewEncoder()
		e.String("k").I64(0).I64(0).U32(maxBatchBlocks + 1).I64(0)
		if typ, _ := rawCall(t, b, msgGetWin, e.Bytes()); typ != msgError {
			t.Errorf("oversized window: got %d, want msgError", typ)
		}
		// Windowed GET against a key nobody attached.
		e = wire.NewEncoder()
		e.String("ghost").I64(0).I64(0).U32(1).I64(0)
		if typ, _ := rawCall(t, b, msgGetWin, e.Bytes()); typ != msgError {
			t.Errorf("get-win on unknown buffer: got %d, want msgError", typ)
		}
		// Batch put against a key nobody attached.
		e = wire.NewEncoder()
		e.String("ghost").U32(1).I64(0).Bytes32([]byte("d"))
		if typ, _ := rawCall(t, b, msgPutBatch, e.Bytes()); typ != msgError {
			t.Errorf("put-batch on unknown buffer: got %d, want msgError", typ)
		}
	})
}

// TestServerRegistryAccessorAndDrop: Server.Registry exposes the registry,
// and dropping a cache-backed buffer removes its cache file.
func TestServerRegistryAccessorAndDrop(t *testing.T) {
	b := newBrig(simnet.LinkSpec{})
	srv := NewServer(b.reg, b.v)
	if srv.Registry() != b.reg {
		t.Fatal("Server.Registry() is not the registry it serves")
	}
	b.v.Run(func() {
		b.start(t)
		opts := Options{BlockSize: 8, Cache: true}
		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "cached", opts, WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		w.Write(make([]byte, 64))
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if b.reg.Len() != 1 {
			t.Fatalf("Len() = %d, want 1", b.reg.Len())
		}
		b.reg.Drop("cached")
		if b.reg.Len() != 0 {
			t.Fatalf("after Drop: Len() = %d, want 0", b.reg.Len())
		}
		if _, ok := b.reg.Lookup("cached"); ok {
			t.Error("dropped buffer still resolvable")
		}
	})
}
