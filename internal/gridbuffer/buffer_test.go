package gridbuffer

import (
	"bytes"
	"testing"
	"time"

	"griddles/internal/simclock"
	"griddles/internal/vfs"
)

func TestBufferPutGet(t *testing.T) {
	b := NewBuffer(simclock.Real{}, "k", Options{})
	id := b.Attach()
	if err := b.Put(0, []byte("block zero")); err != nil {
		t.Fatal(err)
	}
	data, eof, err := b.Get(id, 0)
	if err != nil || eof {
		t.Fatalf("get: eof=%v err=%v", eof, err)
	}
	if string(data) != "block zero" {
		t.Errorf("data = %q", data)
	}
}

func TestBufferGetBlocksUntilPut(t *testing.T) {
	v := simclock.NewVirtualDefault()
	b := NewBuffer(v, "k", Options{})
	v.Run(func() {
		id := b.Attach()
		v.Go("writer", func() {
			v.Sleep(10 * time.Second)
			b.Put(0, []byte("late"))
		})
		data, _, err := b.Get(id, 0)
		if err != nil || string(data) != "late" {
			t.Fatalf("get: %q %v", data, err)
		}
		if v.Elapsed() != 10*time.Second {
			t.Errorf("get returned at %v, want 10s (blocking-read semantics)", v.Elapsed())
		}
	})
}

func TestBufferDeleteOnRead(t *testing.T) {
	b := NewBuffer(simclock.Real{}, "k", Options{})
	id := b.Attach()
	b.Put(0, []byte("x"))
	b.Put(1, []byte("y"))
	if b.Resident() != 2 {
		t.Fatalf("resident=%d", b.Resident())
	}
	b.Get(id, 0)
	if b.Resident() != 1 {
		t.Errorf("after read resident=%d, want 1 (delete-on-read)", b.Resident())
	}
}

func TestBufferCapacityBackpressure(t *testing.T) {
	v := simclock.NewVirtualDefault()
	b := NewBuffer(v, "k", Options{Capacity: 4})
	v.Run(func() {
		id := b.Attach()
		var writerDone time.Duration
		wg := simclock.NewWaitGroup(v)
		wg.Add(1)
		v.Go("writer", func() {
			defer wg.Done()
			for i := int64(0); i < 8; i++ {
				if err := b.Put(i, []byte{byte(i)}); err != nil {
					t.Errorf("put %d: %v", i, err)
				}
			}
			writerDone = v.Elapsed()
		})
		// Reader consumes one block per minute.
		for i := int64(0); i < 8; i++ {
			v.Sleep(time.Minute)
			if _, _, err := b.Get(id, i); err != nil {
				t.Fatalf("get %d: %v", i, err)
			}
		}
		wg.Wait()
		// The writer's 8 puts into a 4-block table are paced by the reader:
		// it can finish only after 4 blocks have been consumed.
		if writerDone < 4*time.Minute {
			t.Errorf("writer finished at %v, want >= 4m (reader-paced backpressure)", writerDone)
		}
	})
}

func TestBufferCacheReRead(t *testing.T) {
	fs := vfs.NewMemFS()
	b := NewBuffer(simclock.Real{}, "k", Options{BlockSize: 4, Cache: true, CacheFS: fs})
	id := b.Attach()
	b.Put(0, []byte("aaaa"))
	b.Put(1, []byte("bbbb"))
	b.Get(id, 0) // consumed and spilled
	b.Get(id, 1)
	if b.Resident() != 0 {
		t.Fatalf("resident=%d", b.Resident())
	}
	data, eof, err := b.Get(id, 0) // re-read comes from the cache file
	if err != nil || eof || string(data) != "aaaa" {
		t.Errorf("cache re-read = %q eof=%v err=%v", data, eof, err)
	}
}

func TestBufferNoCacheReReadFails(t *testing.T) {
	b := NewBuffer(simclock.Real{}, "k", Options{})
	id := b.Attach()
	b.Put(0, []byte("gone"))
	b.Get(id, 0)
	b.CloseWrite(4)
	if _, _, err := b.Get(id, 0); err == nil {
		t.Error("re-read without cache succeeded")
	}
}

func TestBufferBroadcastTwoReaders(t *testing.T) {
	b := NewBuffer(simclock.Real{}, "k", Options{Readers: 2})
	r1, r2 := b.Attach(), b.Attach()
	b.Put(0, []byte("shared"))
	if d, _, _ := b.Get(r1, 0); string(d) != "shared" {
		t.Error("r1 read failed")
	}
	if b.Resident() != 1 {
		t.Errorf("block dropped before second reader consumed it")
	}
	if d, _, _ := b.Get(r2, 0); string(d) != "shared" {
		t.Error("r2 read failed")
	}
	if b.Resident() != 0 {
		t.Errorf("block retained after all readers consumed it")
	}
}

func TestBufferDoubleReadDoesNotDoubleCount(t *testing.T) {
	fs := vfs.NewMemFS()
	b := NewBuffer(simclock.Real{}, "k", Options{Readers: 2, Cache: true, CacheFS: fs})
	r1, _ := b.Attach(), b.Attach()
	b.Put(0, []byte("x"))
	b.Get(r1, 0)
	b.Get(r1, 0) // same reader again
	if b.Resident() != 1 {
		t.Error("same reader's double read dropped the block")
	}
}

func TestBufferDetachFreesBlocks(t *testing.T) {
	v := simclock.NewVirtualDefault()
	b := NewBuffer(v, "k", Options{Capacity: 2, Readers: 2})
	v.Run(func() {
		r1 := b.Attach()
		r2 := b.Attach()
		b.Put(0, []byte("a"))
		b.Put(1, []byte("b"))
		b.Get(r1, 0)
		b.Get(r1, 1)
		if b.Resident() != 2 {
			t.Fatalf("resident=%d", b.Resident())
		}
		b.Detach(r2) // the straggler leaves; its debt is forgiven
		if b.Resident() != 0 {
			t.Errorf("resident=%d after detach, want 0", b.Resident())
		}
	})
}

func TestBufferEOFSemantics(t *testing.T) {
	b := NewBuffer(simclock.Real{}, "k", Options{BlockSize: 4})
	id := b.Attach()
	b.Put(0, []byte("full"))
	b.Put(1, []byte("ta")) // short tail
	b.CloseWrite(6)
	if eof, total := b.EOF(); !eof || total != 6 {
		t.Errorf("EOF() = %v,%d", eof, total)
	}
	d, _, _ := b.Get(id, 0)
	if string(d) != "full" {
		t.Errorf("block0 = %q", d)
	}
	d, _, _ = b.Get(id, 1)
	if string(d) != "ta" {
		t.Errorf("tail = %q", d)
	}
	_, eof, err := b.Get(id, 2)
	if err != nil || !eof {
		t.Errorf("past-end get: eof=%v err=%v", eof, err)
	}
	if err := b.Put(2, []byte("zz")); err == nil {
		t.Error("put after close-write succeeded")
	}
	if err := b.CloseWrite(6); err != nil {
		t.Errorf("replayed close-write with same total: %v", err)
	}
	if err := b.CloseWrite(7); err == nil {
		t.Error("close-write with conflicting total succeeded")
	}
}

func TestBufferGetUnblocksOnCloseWrite(t *testing.T) {
	v := simclock.NewVirtualDefault()
	b := NewBuffer(v, "k", Options{BlockSize: 4})
	v.Run(func() {
		id := b.Attach()
		v.Go("closer", func() {
			v.Sleep(time.Second)
			b.CloseWrite(0)
		})
		_, eof, err := b.Get(id, 0)
		if err != nil || !eof {
			t.Errorf("eof=%v err=%v", eof, err)
		}
	})
}

func TestBufferDropUnblocks(t *testing.T) {
	v := simclock.NewVirtualDefault()
	b := NewBuffer(v, "k", Options{Capacity: 1})
	v.Run(func() {
		id := b.Attach()
		b.Put(0, []byte("x"))
		errs := make(chan error, 2)
		v.Go("blocked-writer", func() {
			errs <- b.Put(1, []byte("y")) // stalls: table full
		})
		v.Go("blocked-reader", func() {
			_, _, err := b.Get(id, 5) // stalls: not written
			errs <- err
		})
		v.Sleep(time.Second)
		b.Drop()
		v.Sleep(time.Second)
		for i := 0; i < 2; i++ {
			select {
			case err := <-errs:
				if err != ErrStopped {
					t.Errorf("blocked op err = %v, want ErrStopped", err)
				}
			default:
				t.Fatal("blocked operation did not return after Drop")
			}
		}
	})
}

func TestBufferNegativeIndex(t *testing.T) {
	b := NewBuffer(simclock.Real{}, "k", Options{})
	if err := b.Put(-1, nil); err == nil {
		t.Error("negative put succeeded")
	}
	if _, _, err := b.Get(0, -2); err == nil {
		t.Error("negative get succeeded")
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry(simclock.Real{}, vfs.NewMemFS())
	b1 := r.GetOrCreate("a", Options{BlockSize: 8})
	b2 := r.GetOrCreate("a", Options{BlockSize: 16}) // first options win
	if b1 != b2 {
		t.Error("GetOrCreate returned distinct buffers for one key")
	}
	if b1.BlockSize() != 8 {
		t.Errorf("block size %d, want first-attach 8", b1.BlockSize())
	}
	if _, ok := r.Lookup("a"); !ok {
		t.Error("lookup failed")
	}
	if r.Len() != 1 {
		t.Errorf("len=%d", r.Len())
	}
	r.Drop("a")
	if _, ok := r.Lookup("a"); ok {
		t.Error("buffer survives drop")
	}
	if err := b1.Put(0, nil); err != ErrStopped {
		t.Errorf("put on dropped buffer err = %v", err)
	}
}

func TestRegistryCacheFSInherited(t *testing.T) {
	fs := vfs.NewMemFS()
	r := NewRegistry(simclock.Real{}, fs)
	b := r.GetOrCreate("k", Options{BlockSize: 2, Cache: true})
	id := b.Attach()
	b.Put(0, []byte("ab"))
	b.Get(id, 0)
	if d, _, err := b.Get(id, 0); err != nil || !bytes.Equal(d, []byte("ab")) {
		t.Errorf("re-read via registry cacheFS: %q %v", d, err)
	}
	names, _ := fs.List(".gridbuffer-cache/")
	if len(names) != 1 {
		t.Errorf("cache file not created on registry FS: %v", names)
	}
}
