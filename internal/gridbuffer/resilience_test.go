package gridbuffer

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"time"

	"griddles/internal/retry"
	"griddles/internal/simclock"
	"griddles/internal/simnet"
)

// bPolicy is a fast-recovering policy for the buffer resilience tests.
func bPolicy(v *simclock.Virtual) retry.Policy {
	p := retry.Default(v)
	p.MaxAttempts = 6
	p.BaseDelay = 10 * time.Millisecond
	p.AttemptTimeout = 500 * time.Millisecond
	return p
}

// pump writes want through w in odd-sized chunks and closes it.
func pump(t *testing.T, w *Writer, want []byte) {
	t.Helper()
	for off := 0; off < len(want); off += 7919 {
		end := off + 7919
		if end > len(want) {
			end = len(want)
		}
		if _, err := w.Write(want[off:end]); err != nil {
			t.Fatalf("write at %d: %v", off, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestWriterReplaysAfterReset(t *testing.T) {
	b := newBrig(simnet.LinkSpec{Latency: time.Millisecond})
	want := make([]byte, 120_000)
	rand.New(rand.NewSource(21)).Read(want)
	b.v.Run(func() {
		b.start(t)
		// Kill the writer's connection mid-stream: the unacked window must
		// replay so the reader still sees every byte exactly once.
		b.net.FailAfter("w", "buf", 40_000)
		var got []byte
		done := simclock.NewWaitGroup(b.v)
		done.Add(1)
		b.v.Go("reader", func() {
			defer done.Done()
			r, err := NewReader(b.net.Host("r"), b.addr, b.v, "k", Options{}, ReaderOptions{})
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			defer r.Close()
			got, err = io.ReadAll(r)
			if err != nil {
				t.Errorf("readall: %v", err)
			}
		})
		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{},
			WriterOptions{Retry: bPolicy(b.v)})
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
		pump(t, w, want)
		done.Wait()
		if !bytes.Equal(got, want) {
			t.Fatalf("stream corrupted through writer reset: got %d bytes want %d", len(got), len(want))
		}
	})
}

func TestWriterReplaysAfterAckLoss(t *testing.T) {
	// Reset the ack direction (buf -> w) instead of the data direction: the
	// writer may have blocks delivered-but-unacknowledged, and the replay of
	// those must be absorbed idempotently by the server.
	b := newBrig(simnet.LinkSpec{Latency: time.Millisecond})
	want := make([]byte, 120_000)
	rand.New(rand.NewSource(22)).Read(want)
	b.v.Run(func() {
		b.start(t)
		b.net.FailAfter("buf", "w", 40)
		var got []byte
		done := simclock.NewWaitGroup(b.v)
		done.Add(1)
		b.v.Go("reader", func() {
			defer done.Done()
			r, err := NewReader(b.net.Host("r"), b.addr, b.v, "k", Options{}, ReaderOptions{})
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			defer r.Close()
			got, err = io.ReadAll(r)
			if err != nil {
				t.Errorf("readall: %v", err)
			}
		})
		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{},
			WriterOptions{Retry: bPolicy(b.v)})
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
		pump(t, w, want)
		done.Wait()
		if !bytes.Equal(got, want) {
			t.Fatalf("stream corrupted through ack loss: got %d bytes want %d", len(got), len(want))
		}
	})
}

func TestReaderResumesAfterReset(t *testing.T) {
	b := newBrig(simnet.LinkSpec{Latency: time.Millisecond})
	want := make([]byte, 120_000)
	rand.New(rand.NewSource(23)).Read(want)
	b.v.Run(func() {
		b.start(t)
		// Kill the response stream mid-transfer: unacknowledged blocks stayed
		// resident on the server, so the reconnected reader resumes at its
		// position with nothing lost.
		b.net.FailAfter("buf", "r", 40_000)
		var got []byte
		done := simclock.NewWaitGroup(b.v)
		done.Add(1)
		b.v.Go("reader", func() {
			defer done.Done()
			r, err := NewReader(b.net.Host("r"), b.addr, b.v, "k", Options{},
				ReaderOptions{Retry: bPolicy(b.v)})
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			defer r.Close()
			got, err = io.ReadAll(r)
			if err != nil {
				t.Errorf("readall: %v", err)
			}
		})
		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{}, WriterOptions{})
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
		pump(t, w, want)
		done.Wait()
		if !bytes.Equal(got, want) {
			t.Fatalf("stream corrupted through reader reset: got %d bytes want %d", len(got), len(want))
		}
	})
}

func TestReaderRecoversFromBlackhole(t *testing.T) {
	b := newBrig(simnet.LinkSpec{Latency: time.Millisecond})
	want := make([]byte, 60_000)
	rand.New(rand.NewSource(24)).Read(want)
	b.v.Run(func() {
		b.start(t)
		// Silence (not reset) the response stream for a while: only the read
		// deadline gets the reader out, and recovery is a reconnect after the
		// route heals.
		b.net.SetBlackhole("buf", "r", true)
		b.v.Go("healer", func() {
			b.v.Sleep(800 * time.Millisecond)
			b.net.SetBlackhole("buf", "r", false)
		})
		var got []byte
		done := simclock.NewWaitGroup(b.v)
		done.Add(1)
		b.v.Go("reader", func() {
			defer done.Done()
			r, err := NewReader(b.net.Host("r"), b.addr, b.v, "k", Options{},
				ReaderOptions{Retry: bPolicy(b.v)})
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			defer r.Close()
			got, err = io.ReadAll(r)
			if err != nil {
				t.Errorf("readall: %v", err)
			}
		})
		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{}, WriterOptions{})
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
		pump(t, w, want)
		done.Wait()
		if !bytes.Equal(got, want) {
			t.Fatalf("stream corrupted through blackhole: got %d bytes want %d", len(got), len(want))
		}
	})
}

func TestConnPerCallWriterRetries(t *testing.T) {
	b := newBrig(simnet.LinkSpec{Latency: time.Millisecond})
	want := make([]byte, 40_000)
	rand.New(rand.NewSource(25)).Read(want)
	b.v.Run(func() {
		b.start(t)
		var got []byte
		done := simclock.NewWaitGroup(b.v)
		done.Add(1)
		b.v.Go("reader", func() {
			defer done.Done()
			r, err := NewReader(b.net.Host("r"), b.addr, b.v, "k", Options{}, ReaderOptions{})
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			defer r.Close()
			got, err = io.ReadAll(r)
			if err != nil {
				t.Errorf("readall: %v", err)
			}
		})
		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{},
			WriterOptions{ConnPerCall: true, Retry: bPolicy(b.v)})
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
		// Every call gets a fresh connection; kill one mid-request and the
		// whole request/response call retries.
		b.net.FailAfter("w", "buf", 10_000)
		pump(t, w, want)
		done.Wait()
		if !bytes.Equal(got, want) {
			t.Fatalf("stream corrupted in conn-per-call retry: got %d bytes want %d", len(got), len(want))
		}
	})
}

func TestWriterFailsFastWithoutPolicy(t *testing.T) {
	b := newBrig(simnet.LinkSpec{Latency: time.Millisecond})
	b.v.Run(func() {
		b.start(t)
		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{}, WriterOptions{})
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
		b.net.FailAfter("w", "buf", 8_000)
		data := make([]byte, 120_000)
		_, werr := w.Write(data)
		if werr == nil {
			werr = w.Close()
		}
		if werr == nil {
			t.Fatal("writer with no retry policy survived a reset")
		}
	})
}
