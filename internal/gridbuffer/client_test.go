package gridbuffer

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"griddles/internal/simclock"
	"griddles/internal/simnet"
	"griddles/internal/vfs"
)

// bufPortSeq hands every test its own buffer-service identity. Tests used
// to share the literal "buf:7000", which made the package order-dependent:
// any future cross-test state keyed by address (or a leaked listener)
// collided silently. With per-test ports, `go test -race -p 4` can shuffle
// and shard tests freely.
var bufPortSeq atomic.Int64

func nextBufAddr() string {
	return fmt.Sprintf("buf:%d", 7000+bufPortSeq.Add(1))
}

// brig is a buffer service on host "buf" with writer host "w" and reader
// host "r". Each brig owns a unique service address in addr.
type brig struct {
	v    *simclock.Virtual
	net  *simnet.Network
	fs   *vfs.MemFS
	reg  *Registry
	addr string
}

func newBrig(spec simnet.LinkSpec) *brig {
	v := simclock.NewVirtualDefault()
	n := simnet.New(v)
	n.SetLinkBoth("w", "buf", spec)
	n.SetLinkBoth("r", "buf", simnet.LinkSpec{Latency: 100 * time.Microsecond})
	fs := vfs.NewMemFS()
	return &brig{v: v, net: n, fs: fs, reg: NewRegistry(v, fs), addr: nextBufAddr()}
}

func (b *brig) start(t *testing.T) {
	t.Helper()
	l, err := b.net.Host("buf").Listen(b.addr)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	b.v.Go("gb-serve", func() { NewServer(b.reg, b.v).Serve(l) })
}

func TestStreamWriterToReader(t *testing.T) {
	b := newBrig(simnet.LinkSpec{Latency: 2 * time.Millisecond})
	want := make([]byte, 100_000)
	rand.New(rand.NewSource(1)).Read(want)
	b.v.Run(func() {
		b.start(t)
		var got []byte
		done := simclock.NewWaitGroup(b.v)
		done.Add(1)
		b.v.Go("reader", func() {
			defer done.Done()
			r, err := NewReader(b.net.Host("r"), b.addr, b.v, "k", Options{}, ReaderOptions{})
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			defer r.Close()
			data, err := io.ReadAll(r)
			if err != nil {
				t.Errorf("readall: %v", err)
				return
			}
			got = data
		})
		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{}, WriterOptions{})
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
		for off := 0; off < len(want); off += 7919 { // odd chunks exercise blocking
			end := off + 7919
			if end > len(want) {
				end = len(want)
			}
			if _, err := w.Write(want[off:end]); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		done.Wait()
		if !bytes.Equal(got, want) {
			t.Errorf("stream corrupted: got %d bytes want %d", len(got), len(want))
		}
	})
}

func TestReaderOverlapsWriter(t *testing.T) {
	// The reader must see the first block long before the writer finishes —
	// this is the pipelining the paper's Table 2 experiment 2 exploits.
	b := newBrig(simnet.LinkSpec{Latency: time.Millisecond})
	b.v.Run(func() {
		b.start(t)
		var firstByteAt time.Duration
		done := simclock.NewWaitGroup(b.v)
		done.Add(1)
		b.v.Go("reader", func() {
			defer done.Done()
			r, err := NewReader(b.net.Host("r"), b.addr, b.v, "k", Options{}, ReaderOptions{})
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			defer r.Close()
			buf := make([]byte, 4096)
			if _, err := io.ReadFull(r, buf); err != nil {
				t.Errorf("first block: %v", err)
				return
			}
			firstByteAt = b.v.Elapsed()
			io.Copy(io.Discard, r)
		})
		w, _ := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{}, WriterOptions{})
		block := make([]byte, 4096)
		for i := 0; i < 100; i++ {
			w.Write(block)
			b.v.Sleep(time.Second) // a slow producer, one block per second
		}
		w.Close()
		done.Wait()
		if firstByteAt > 5*time.Second {
			t.Errorf("reader saw first block at %v; no overlap", firstByteAt)
		}
		if b.v.Elapsed() < 100*time.Second {
			t.Errorf("total %v impossibly fast", b.v.Elapsed())
		}
	})
}

func TestWriterWindowLimitsWANThroughput(t *testing.T) {
	// Over a high-latency link, a window of 2 blocks should roughly halve
	// throughput versus a window of 8 — the paper's latency-sensitivity
	// mechanism.
	run := func(window int) time.Duration {
		b := newBrig(simnet.LinkSpec{Latency: 100 * time.Millisecond})
		b.v.Run(func() {
			b.start(t)
			done := simclock.NewWaitGroup(b.v)
			done.Add(1)
			b.v.Go("reader", func() {
				defer done.Done()
				r, _ := NewReader(b.net.Host("r"), b.addr, b.v, "k", Options{}, ReaderOptions{Depth: 8})
				defer r.Close()
				io.Copy(io.Discard, r)
			})
			w, _ := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{}, WriterOptions{Window: window})
			w.Write(make([]byte, 200*4096))
			w.Close()
			done.Wait()
		})
		return b.v.Elapsed()
	}
	narrow, wide := run(2), run(8)
	if narrow < wide*2 {
		t.Errorf("window=2 took %v, window=8 took %v; expected ~4x gap", narrow, wide)
	}
}

func TestReaderSeekBackwardWithCache(t *testing.T) {
	b := newBrig(simnet.LinkSpec{Latency: time.Millisecond})
	content := []byte("0123456789abcdefghijklmnopqrstuvwxyz")
	b.v.Run(func() {
		b.start(t)
		opts := Options{BlockSize: 8, Cache: true}
		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k", opts, WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		w.Write(content)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(b.net.Host("r"), b.addr, b.v, "k", opts, ReaderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		first, err := io.ReadAll(r)
		if err != nil || !bytes.Equal(first, content) {
			t.Fatalf("first pass: %q err=%v", first, err)
		}
		// Re-read from the start: blocks now come from the cache file
		// (paper Figure 3 / the DARLAM re-read).
		if _, err := r.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		second, err := io.ReadAll(r)
		if err != nil || !bytes.Equal(second, content) {
			t.Fatalf("cache re-read: %q err=%v", second, err)
		}
		// And a mid-stream seek.
		if _, err := r.Seek(10, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		tail, _ := io.ReadAll(r)
		if !bytes.Equal(tail, content[10:]) {
			t.Errorf("after seek(10): %q", tail)
		}
	})
}

func TestBroadcastTwoReaderClients(t *testing.T) {
	b := newBrig(simnet.LinkSpec{Latency: time.Millisecond})
	want := make([]byte, 50_000)
	rand.New(rand.NewSource(2)).Read(want)
	b.v.Run(func() {
		b.start(t)
		opts := Options{Readers: 2}
		got := make([][]byte, 2)
		wg := simclock.NewWaitGroup(b.v)
		for i := 0; i < 2; i++ {
			i := i
			wg.Add(1)
			b.v.Go("reader", func() {
				defer wg.Done()
				r, err := NewReader(b.net.Host("r"), b.addr, b.v, "bcast", opts, ReaderOptions{})
				if err != nil {
					t.Errorf("reader %d: %v", i, err)
					return
				}
				defer r.Close()
				got[i], _ = io.ReadAll(r)
			})
		}
		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "bcast", opts, WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		w.Write(want)
		w.Close()
		wg.Wait()
		for i := 0; i < 2; i++ {
			if !bytes.Equal(got[i], want) {
				t.Errorf("reader %d corrupted (%d bytes)", i, len(got[i]))
			}
		}
	})
}

func TestEmptyStream(t *testing.T) {
	b := newBrig(simnet.LinkSpec{})
	b.v.Run(func() {
		b.start(t)
		w, _ := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{}, WriterOptions{})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, _ := NewReader(b.net.Host("r"), b.addr, b.v, "k", Options{}, ReaderOptions{})
		defer r.Close()
		data, err := io.ReadAll(r)
		if err != nil || len(data) != 0 {
			t.Errorf("empty stream read %d bytes, err=%v", len(data), err)
		}
	})
}

func TestTailExactlyOneBlock(t *testing.T) {
	b := newBrig(simnet.LinkSpec{})
	b.v.Run(func() {
		b.start(t)
		opts := Options{BlockSize: 16}
		w, _ := NewWriter(b.net.Host("w"), b.addr, b.v, "k", opts, WriterOptions{})
		w.Write(make([]byte, 32)) // exactly two full blocks
		w.Close()
		r, _ := NewReader(b.net.Host("r"), b.addr, b.v, "k", opts, ReaderOptions{})
		defer r.Close()
		data, err := io.ReadAll(r)
		if err != nil || len(data) != 32 {
			t.Errorf("read %d bytes err=%v", len(data), err)
		}
	})
}

func TestPutOnUnknownBufferFails(t *testing.T) {
	b := newBrig(simnet.LinkSpec{})
	b.v.Run(func() {
		b.start(t)
		// A writer that attaches creates the buffer, so sneak a raw Put via
		// a reader-side trick: create writer, close it, drop the buffer,
		// then write again.
		w, _ := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{BlockSize: 4}, WriterOptions{})
		b.reg.Drop("k")
		_, err := w.Write(make([]byte, 4))
		if err == nil {
			// The first write may be buffered before the error returns;
			// Close must surface it.
			err = w.Close()
		}
		if err == nil {
			t.Error("write into dropped buffer reported no error")
		}
	})
}

func TestWriterDialFailure(t *testing.T) {
	v := simclock.NewVirtualDefault()
	n := simnet.New(v)
	v.Run(func() {
		if _, err := NewWriter(n.Host("w"), "none:1", v, "k", Options{}, WriterOptions{}); err == nil {
			t.Error("writer to missing service succeeded")
		}
		if _, err := NewReader(n.Host("r"), "none:1", v, "k", Options{}, ReaderOptions{}); err == nil {
			t.Error("reader to missing service succeeded")
		}
	})
}

// Property: any payload, block size, window and depth produce an intact
// stream.
func TestStreamIntegrityProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, bsRaw uint8, winRaw, depthRaw uint8) bool {
		size := int(sizeRaw) % 30000
		bs := int(bsRaw)%500 + 1
		win := int(winRaw)%6 + 1
		depth := int(depthRaw)%6 + 1
		want := make([]byte, size)
		rand.New(rand.NewSource(seed)).Read(want)
		b := newBrig(simnet.LinkSpec{Latency: time.Millisecond})
		ok := true
		b.v.Run(func() {
			l, err := b.net.Host("buf").Listen(b.addr)
			if err != nil {
				ok = false
				return
			}
			b.v.Go("serve", func() { NewServer(b.reg, b.v).Serve(l) })
			opts := Options{BlockSize: bs}
			var got []byte
			wg := simclock.NewWaitGroup(b.v)
			wg.Add(1)
			b.v.Go("reader", func() {
				defer wg.Done()
				r, err := NewReader(b.net.Host("r"), b.addr, b.v, "k", opts, ReaderOptions{Depth: depth})
				if err != nil {
					ok = false
					return
				}
				defer r.Close()
				got, _ = io.ReadAll(r)
			})
			w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k", opts, WriterOptions{Window: win})
			if err != nil {
				ok = false
				return
			}
			if _, err := w.Write(want); err != nil {
				ok = false
				return
			}
			if err := w.Close(); err != nil {
				ok = false
				return
			}
			wg.Wait()
			ok = ok && bytes.Equal(got, want)
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
