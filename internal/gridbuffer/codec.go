package gridbuffer

import (
	"io"

	"griddles/internal/wire"
)

// Block-codec negotiation rides the Attach exchange: a client that wants a
// compressed stream appends the codec name after the historical attach
// fields (old servers ignore trailing bytes), and a new server appends its
// choice to the attach response (old clients ignore it likewise; new
// clients treat a response without the field as an old server and stay
// raw). A client configured raw appends nothing, so the default wire bytes
// are identical to the pre-codec protocol. Only block payloads are
// transformed — framing, indices and acknowledgements stay raw.
//
// Connection-per-call mode (the paper's 2004 SOAP discipline) never
// negotiates: its data connections skip the Attach exchange entirely.

// codecState is one connection's negotiated block codec plus reusable
// transform buffers, so a steady stream allocates nothing per block.
type codecState struct {
	codec  wire.Codec
	encBuf []byte
	decBuf []byte
}

func (cs *codecState) active() bool { return cs != nil && cs.codec != nil }

// enc compresses one block payload; the result aliases an internal buffer
// valid until the next enc. Raw state passes data through untouched.
func (cs *codecState) enc(data []byte) []byte {
	if !cs.active() {
		return data
	}
	cs.encBuf = cs.codec.Encode(cs.encBuf[:0], data)
	return cs.encBuf
}

// dec reverses enc; the result aliases an internal buffer valid until the
// next dec.
func (cs *codecState) dec(data []byte) ([]byte, error) {
	if !cs.active() {
		return data, nil
	}
	var err error
	cs.decBuf, err = cs.codec.Decode(cs.decBuf[:0], data)
	return cs.decBuf, err
}

// writePutFrame writes blocks as the smallest frame carrying them — the
// historical one-block PUT (byte-identical to the pre-batch protocol) or a
// PUT-BATCH — using vectored IO, so block payloads travel straight from the
// pending list (or the compression arena) to the socket without being
// assembled into an intermediate buffer first.
func writePutFrame(w io.Writer, key string, blocks []wblock, cs *codecState) error {
	if len(blocks) == 1 {
		data := cs.enc(blocks[0].data)
		hdr := wire.NewEncoder().String(key).I64(blocks[0].idx).U32(uint32(len(data)))
		return wire.WriteFrameV(w, msgPut, hdr.Bytes(), data)
	}
	// Compress every block into one arena first: the header segments and
	// payload spans are sliced out only after both buffers stop growing.
	type span struct {
		a, b int    // arena range (codec active)
		raw  []byte // original payload (raw state)
	}
	spans := make([]span, len(blocks))
	arena := cs.arena()
	hdrs := wire.NewEncoder()
	hdrs.String(key).U32(uint32(len(blocks)))
	marks := make([]int, len(blocks))
	for i, blk := range blocks {
		n := len(blk.data)
		if cs.active() {
			a := len(arena)
			arena = cs.codec.Encode(arena, blk.data)
			spans[i] = span{a: a, b: len(arena)}
			n = len(arena) - a
		} else {
			spans[i] = span{raw: blk.data}
		}
		hdrs.I64(blk.idx).U32(uint32(n))
		marks[i] = len(hdrs.Bytes())
	}
	cs.keepArena(arena)
	hb := hdrs.Bytes()
	parts := make([][]byte, 0, 2*len(blocks))
	prev := 0
	for i := range blocks {
		parts = append(parts, hb[prev:marks[i]])
		prev = marks[i]
		if spans[i].raw != nil {
			parts = append(parts, spans[i].raw)
		} else {
			parts = append(parts, arena[spans[i].a:spans[i].b])
		}
	}
	return wire.WriteFrameV(w, msgPutBatch, parts...)
}

// arena hands out the batch compression buffer (nil state compresses
// nothing and gets nil).
func (cs *codecState) arena() []byte {
	if cs == nil {
		return nil
	}
	return cs.encBuf[:0]
}

func (cs *codecState) keepArena(b []byte) {
	if cs != nil {
		cs.encBuf = b
	}
}
