// Package gridbuffer implements the paper's Grid Buffer service (§3.1, §4):
// the direct writer-to-reader coupling behind IO mechanism 6.
//
// A buffer is a hash table of fixed-size blocks (the paper stores data "in a
// hash table rather than a sequential buffer" to allow random operations).
// Writers Put blocks; readers Get blocks and block until the data has been
// written — this is what turns a file-coupled pipeline into an overlapped
// one. Consumed blocks are deleted from the table; if the cache file is
// enabled, they are spilled to it first, so a reader can seek backward and
// re-read an already-consumed stream (the paper's DARLAM re-read,
// Figure 3). A bounded table capacity gives reader-paced backpressure: a
// slow downstream model drags its upstream writer, the effect visible in the
// paper's Table 5 high-latency rows.
//
// Broadcast mode (one writer, several readers) keeps a block until every
// expected reader has consumed it.
package gridbuffer

import (
	"errors"
	"fmt"

	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/vfs"
)

// DefaultCapacity is the default bound on resident blocks: 8192 blocks =
// 32 MiB at the paper's 4096-byte blocks — enough to hold a whole coupling
// stream in memory, as the paper's in-memory hash table evidently did (its
// Table 5 shows C-CAM finishing unimpeded while cc2lam drags behind a slow
// WAN reader).
const DefaultCapacity = 8192

// DefaultBlockSize matches the paper's typical write size.
const DefaultBlockSize = 4096

// Options configures one named buffer. Writer and readers must agree on
// BlockSize (the GNS mapping carries it to both sides).
type Options struct {
	// BlockSize in bytes; 0 selects DefaultBlockSize.
	BlockSize int
	// Capacity is the maximum number of resident blocks; 0 selects
	// DefaultCapacity. Writers stall when the table is full of unconsumed
	// blocks.
	Capacity int
	// Cache spills consumed blocks to a cache file so readers can seek
	// backward and re-read (requires CacheFS).
	Cache     bool
	CacheFS   vfs.FS
	CachePath string
	// Readers is the number of readers expected to consume each block
	// (broadcast); 0 means 1.
	Readers int
}

func (o Options) blockSize() int {
	if o.BlockSize <= 0 {
		return DefaultBlockSize
	}
	return o.BlockSize
}

func (o Options) capacity() int {
	if o.Capacity <= 0 {
		return DefaultCapacity
	}
	return o.Capacity
}

func (o Options) readers() int {
	if o.Readers <= 0 {
		return 1
	}
	return o.Readers
}

// ErrStopped is returned by blocked operations when the buffer is dropped.
var ErrStopped = errors.New("gridbuffer: buffer dropped")

// Buffer is one named writer/reader rendezvous.
type Buffer struct {
	clock simclock.Clock
	opts  Options
	key   string

	// mu is clock-aware because it is held across simulated disk IO when a
	// consumed block spills to the cache file.
	mu    *simclock.Mutex
	rcond simclock.Cond // readers wait for blocks / EOF
	wcond simclock.Cond // writers wait for capacity

	blocks   map[int64][]byte
	consumed map[int64]map[int]bool // blockIdx -> readerIDs that have read it
	dead     map[int64]bool         // fully consumed and dropped without a cache copy
	written  int64                  // highest contiguous sequential watermark (for diagnostics)
	eof      bool
	total    int64 // total byte length, valid once eof

	nextReader int
	attached   map[int]bool

	cacheFile vfs.File
	inCache   map[int64]bool
	stopped   bool

	// Cached instruments (discard until SetObserver): queue depth,
	// blocking-read wait, capacity stalls, spills and broadcast fan-out.
	puts       *obs.Counter
	gets       *obs.Counter
	spills     *obs.Counter
	cacheReads *obs.Counter
	putStall   *obs.Histogram
	readWait   *obs.Histogram
	resident   *obs.Gauge
	fanout     *obs.Gauge
}

// NewBuffer returns an empty buffer with the given key and options.
func NewBuffer(clock simclock.Clock, key string, opts Options) *Buffer {
	b := &Buffer{
		clock:    clock,
		opts:     opts,
		key:      key,
		blocks:   make(map[int64][]byte),
		consumed: make(map[int64]map[int]bool),
		dead:     make(map[int64]bool),
		attached: make(map[int]bool),
		inCache:  make(map[int64]bool),
	}
	b.mu = simclock.NewMutex(clock)
	b.rcond = clock.NewCond(b.mu)
	b.wcond = clock.NewCond(b.mu)
	b.SetObserver(nil)
	return b
}

// SetObserver routes the buffer's metrics to o; nil discards them. Metrics
// carry the buffer key as a label, so concurrent couplings stay separable.
func (b *Buffer) SetObserver(o *obs.Observer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	kv := func(name string) string { return obs.Key(name, "key", b.key) }
	b.puts = o.Counter(kv("gb.put.total"))
	b.gets = o.Counter(kv("gb.get.total"))
	b.spills = o.Counter(kv("gb.spill.total"))
	b.cacheReads = o.Counter(kv("gb.cache.read.total"))
	b.putStall = o.Histogram(kv("gb.put.stall_ms"))
	b.readWait = o.Histogram(kv("gb.read.wait_ms"))
	b.resident = o.Gauge(kv("gb.resident.blocks"))
	b.fanout = o.Gauge(kv("gb.readers.attached"))
}

// Key reports the buffer's global name.
func (b *Buffer) Key() string { return b.key }

// BlockSize reports the negotiated block size.
func (b *Buffer) BlockSize() int { return b.opts.blockSize() }

// Attach registers a reader and returns its ID.
func (b *Buffer) Attach() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextReader
	b.nextReader++
	b.attached[id] = true
	b.fanout.Set(int64(len(b.attached)))
	return id
}

// Reattach re-registers a reader after a transport reconnect. When prev is
// still attached the same ID is returned, so a broadcast buffer does not
// count the reconnected reader as a second consumer (a fresh ghost ID would
// inflate the expected fan-out and strand blocks). prev < 0, or a prev that
// already detached, falls back to a fresh Attach.
func (b *Buffer) Reattach(prev int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if prev >= 0 && b.attached[prev] {
		return prev
	}
	id := b.nextReader
	b.nextReader++
	b.attached[id] = true
	b.fanout.Set(int64(len(b.attached)))
	return id
}

// Detach unregisters a reader. Blocks it had not consumed become consumable
// by the remaining expectation (they are treated as consumed by id).
func (b *Buffer) Detach(id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.attached[id] {
		return
	}
	delete(b.attached, id)
	b.fanout.Set(int64(len(b.attached)))
	for idx := range b.blocks {
		b.markConsumedLocked(idx, id)
	}
	b.wcond.Broadcast()
}

// Put stores data as block idx, stalling while the table is at capacity
// with unconsumed blocks. Overwriting a resident block never stalls.
func (b *Buffer) Put(idx int64, data []byte) error {
	if idx < 0 {
		return fmt.Errorf("gridbuffer: negative block index %d", idx)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.puts.Inc()
	if b.dead[idx] || b.inCache[idx] {
		// Every expected reader already consumed this block: the put is a
		// replay of a delivery whose acknowledgement was lost. Accepting it
		// idempotently (rather than parking it forever in the table) is what
		// makes writer-side replay after reconnect safe.
		return nil
	}
	stalled := false
	entered := b.clock.Now()
	for {
		if b.stopped {
			return ErrStopped
		}
		if b.eof {
			return errors.New("gridbuffer: put after close-write")
		}
		if _, resident := b.blocks[idx]; resident || len(b.blocks) < b.opts.capacity() {
			break
		}
		stalled = true
		b.wcond.Wait()
	}
	if stalled {
		b.putStall.ObserveDuration(b.clock.Now().Sub(entered))
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b.blocks[idx] = cp
	b.resident.Set(int64(len(b.blocks)))
	if idx >= b.written {
		b.written = idx + 1
	}
	b.rcond.Broadcast()
	return nil
}

// CloseWrite marks end-of-stream with the total byte length. A repeat with
// the same total is an idempotent no-op (a writer re-sending close after a
// lost acknowledgement); a conflicting total is an error.
func (b *Buffer) CloseWrite(totalBytes int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.eof {
		if b.total == totalBytes {
			return nil
		}
		return errors.New("gridbuffer: duplicate close-write")
	}
	b.eof = true
	b.total = totalBytes
	b.rcond.Broadcast()
	return nil
}

// EOF reports whether the writer has closed, and the total length if so.
func (b *Buffer) EOF() (bool, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.eof, b.total
}

// blockLen reports the valid length of block idx once total is known.
func (b *Buffer) blockLenLocked(idx int64) int {
	bs := int64(b.opts.blockSize())
	if !b.eof {
		return int(bs)
	}
	start := idx * bs
	if start >= b.total {
		return 0
	}
	if start+bs > b.total {
		return int(b.total - start)
	}
	return int(bs)
}

// Get returns the contents of block idx for reader id, blocking until the
// block has been written. It returns (nil, true, nil) when idx is at or past
// end-of-stream. Reading a block the reader already consumed is served from
// the resident table or the cache file.
func (b *Buffer) Get(id int, idx int64) (data []byte, eof bool, err error) {
	return b.get(id, idx, true)
}

// GetKeep is Get without the consume: the block stays resident (charged
// against capacity) until the reader acknowledges it via AckBelow. The
// resilient binary transport uses this pair so a delivery lost on the wire
// can be re-requested after reconnect.
func (b *Buffer) GetKeep(id int, idx int64) (data []byte, eof bool, err error) {
	return b.get(id, idx, false)
}

// AckBelow marks every resident block with index < upto as consumed by
// reader id (spilling to the cache file as usual), freeing capacity for the
// writer.
func (b *Buffer) AckBelow(id int, upto int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for idx := range b.blocks {
		if idx < upto {
			b.markConsumedLocked(idx, id)
		}
	}
}

func (b *Buffer) get(id int, idx int64, consume bool) (data []byte, eof bool, err error) {
	if idx < 0 {
		return nil, false, fmt.Errorf("gridbuffer: negative block index %d", idx)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gets.Inc()
	waited := false
	entered := b.clock.Now()
	observeWait := func() {
		if waited {
			b.readWait.ObserveDuration(b.clock.Now().Sub(entered))
		}
	}
	for {
		if b.stopped {
			return nil, false, ErrStopped
		}
		if data, ok := b.blocks[idx]; ok {
			observeWait()
			out := data
			if n := b.blockLenLocked(idx); n < len(out) {
				out = out[:n]
			}
			cp := make([]byte, len(out))
			copy(cp, out)
			if consume {
				b.markConsumedLocked(idx, id)
			}
			return cp, false, nil
		}
		if b.inCache[idx] {
			observeWait()
			return b.readCacheLocked(idx)
		}
		if b.eof {
			bs := int64(b.opts.blockSize())
			if idx*bs >= b.total {
				observeWait()
				return nil, true, nil
			}
			// The block existed but was dropped without a cache: the reader
			// attached too late or sought backward without cache enabled.
			return nil, false, fmt.Errorf("gridbuffer: block %d of %q no longer available (enable the cache file for re-reads)", idx, b.key)
		}
		waited = true
		b.rcond.Wait()
	}
}

// markConsumedLocked records that id has read idx and drops the block once
// every expected reader has it (spilling to the cache file first).
func (b *Buffer) markConsumedLocked(idx int64, id int) {
	set := b.consumed[idx]
	if set == nil {
		set = make(map[int]bool)
		b.consumed[idx] = set
	}
	if set[id] {
		return
	}
	set[id] = true
	if len(set) < b.opts.readers() {
		return
	}
	data, ok := b.blocks[idx]
	if !ok {
		return
	}
	if b.opts.Cache {
		b.spillLocked(idx, data)
	}
	delete(b.blocks, idx)
	if !b.inCache[idx] {
		b.dead[idx] = true
	}
	delete(b.consumed, idx)
	b.resident.Set(int64(len(b.blocks)))
	b.wcond.Broadcast()
}

func (b *Buffer) cachePath() string {
	if b.opts.CachePath != "" {
		return b.opts.CachePath
	}
	return ".gridbuffer-cache/" + b.key
}

func (b *Buffer) spillLocked(idx int64, data []byte) {
	if b.opts.CacheFS == nil {
		return
	}
	if b.cacheFile == nil {
		f, err := b.opts.CacheFS.OpenFile(b.cachePath(), vfs.ReadWriteFlag, 0o644)
		if err != nil {
			return // cache is best-effort; re-reads will fail loudly instead
		}
		b.cacheFile = f
	}
	if _, err := b.cacheFile.WriteAt(data, idx*int64(b.opts.blockSize())); err == nil {
		b.inCache[idx] = true
		b.spills.Inc()
	}
}

func (b *Buffer) readCacheLocked(idx int64) ([]byte, bool, error) {
	if b.cacheFile == nil {
		return nil, false, fmt.Errorf("gridbuffer: cache file missing for %q", b.key)
	}
	b.cacheReads.Inc()
	n := b.blockLenLocked(idx)
	buf := make([]byte, n)
	got, err := b.cacheFile.ReadAt(buf, idx*int64(b.opts.blockSize()))
	if err != nil && got < n {
		return nil, false, fmt.Errorf("gridbuffer: cache read of block %d: %w", idx, err)
	}
	return buf[:got], false, nil
}

// Resident reports the number of blocks currently in the hash table.
func (b *Buffer) Resident() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.blocks)
}

// Drop aborts the buffer: all blocked operations return ErrStopped and the
// cache file is closed.
func (b *Buffer) Drop() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stopped {
		return
	}
	b.stopped = true
	if b.cacheFile != nil {
		b.cacheFile.Close()
		b.cacheFile = nil
	}
	b.rcond.Broadcast()
	b.wcond.Broadcast()
}
