// Package gridbuffer implements the paper's Grid Buffer service (§3.1, §4):
// the direct writer-to-reader coupling behind IO mechanism 6.
//
// A buffer is a hash table of fixed-size blocks (the paper stores data "in a
// hash table rather than a sequential buffer" to allow random operations).
// Writers Put blocks; readers Get blocks and block until the data has been
// written — this is what turns a file-coupled pipeline into an overlapped
// one. Consumed blocks are deleted from the table; if the cache file is
// enabled, they are spilled to it first, so a reader can seek backward and
// re-read an already-consumed stream (the paper's DARLAM re-read,
// Figure 3). A bounded table capacity gives reader-paced backpressure: a
// slow downstream model drags its upstream writer, the effect visible in the
// paper's Table 5 high-latency rows.
//
// Broadcast mode (one writer, several readers) keeps a block until every
// expected reader has consumed it.
//
// The hash table is sharded (power-of-two shards, per-shard lock), so
// concurrent writers and broadcast readers on different blocks do not
// contend on one lock; stream-wide state (capacity, EOF, attach registry)
// lives behind a separate small lock, and block payloads are recycled
// through a sync.Pool.
package gridbuffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/vfs"
)

// DefaultCapacity is the default bound on resident blocks: 8192 blocks =
// 32 MiB at the paper's 4096-byte blocks — enough to hold a whole coupling
// stream in memory, as the paper's in-memory hash table evidently did (its
// Table 5 shows C-CAM finishing unimpeded while cc2lam drags behind a slow
// WAN reader).
const DefaultCapacity = 8192

// DefaultBlockSize matches the paper's typical write size.
const DefaultBlockSize = 4096

// DefaultShards is the default shard count of the block table. Sixteen
// per-shard locks are plenty for the fan-outs a single coupling sees; the
// count is clamped to a power of two so the shard of a block index is one
// mask away.
const DefaultShards = 16

// Options configures one named buffer. Writer and readers must agree on
// BlockSize (the GNS mapping carries it to both sides).
type Options struct {
	// BlockSize in bytes; 0 selects DefaultBlockSize.
	BlockSize int
	// Capacity is the maximum number of resident blocks; 0 selects
	// DefaultCapacity. Writers stall when the table is full of unconsumed
	// blocks.
	Capacity int
	// Cache spills consumed blocks to a cache file so readers can seek
	// backward and re-read (requires CacheFS).
	Cache     bool
	CacheFS   vfs.FS
	CachePath string
	// Readers is the number of readers expected to consume each block
	// (broadcast); 0 means 1.
	Readers int
	// Shards is the block-table shard count, rounded up to a power of two;
	// 0 selects DefaultShards.
	Shards int
}

func (o Options) blockSize() int {
	if o.BlockSize <= 0 {
		return DefaultBlockSize
	}
	return o.BlockSize
}

func (o Options) capacity() int {
	if o.Capacity <= 0 {
		return DefaultCapacity
	}
	return o.Capacity
}

func (o Options) readers() int {
	if o.Readers <= 0 {
		return 1
	}
	return o.Readers
}

func (o Options) shards() int {
	n := o.Shards
	if n <= 0 {
		n = DefaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ErrStopped is returned by blocked operations when the buffer is dropped.
var ErrStopped = errors.New("gridbuffer: buffer dropped")

// shard is one slice of the block table: the blocks whose index hashes here,
// plus their broadcast-consumption bookkeeping. The shard lock is
// clock-aware because it is held across simulated disk IO when a consumed
// block spills to the cache file.
type shard struct {
	mu    *simclock.Mutex
	rcond simclock.Cond // readers wait for blocks of this shard / EOF

	blocks   map[int64][]byte
	consumed map[int64]map[int]bool // blockIdx -> readerIDs that have read it
	dead     map[int64]bool         // fully consumed and dropped without a cache copy
	inCache  map[int64]bool
}

// bufInstruments is the swappable set of cached obs instruments (discard
// until SetObserver), published atomically so hot paths load one pointer.
type bufInstruments struct {
	puts       *obs.Counter
	gets       *obs.Counter
	spills     *obs.Counter
	cacheReads *obs.Counter
	putStall   *obs.Histogram
	readWait   *obs.Histogram
	resident   *obs.Gauge
	fanout     *obs.Gauge
	shardCount *obs.Gauge
	contended  *obs.Counter
}

// Buffer is one named writer/reader rendezvous.
type Buffer struct {
	clock simclock.Clock
	opts  Options
	key   string

	mask   int64
	shards []shard
	pool   sync.Pool // block payloads, capacity == blockSize

	// smu guards the stream-wide state: capacity accounting, EOF, the
	// attach registry and the stop flag. Lock order is shard.mu -> smu ->
	// cmu; smu is never taken before a shard lock is released by the same
	// path that then takes one.
	smu      *simclock.Mutex
	wcond    simclock.Cond // writers wait for capacity
	resident int           // blocks charged against Capacity
	eof      bool
	total    int64 // total byte length, valid once eof
	stopped  bool

	nextReader int
	attached   map[int]bool

	// cmu serializes the shared cache file (taken after a shard lock).
	cmu       *simclock.Mutex
	cacheFile vfs.File

	written atomic.Int64 // highest sequential watermark (for diagnostics)
	ins     atomic.Pointer[bufInstruments]
}

// NewBuffer returns an empty buffer with the given key and options.
func NewBuffer(clock simclock.Clock, key string, opts Options) *Buffer {
	n := opts.shards()
	b := &Buffer{
		clock:    clock,
		opts:     opts,
		key:      key,
		mask:     int64(n - 1),
		shards:   make([]shard, n),
		attached: make(map[int]bool),
	}
	bs := opts.blockSize()
	b.pool.New = func() any { return make([]byte, bs) }
	for i := range b.shards {
		s := &b.shards[i]
		s.mu = simclock.NewMutex(clock)
		s.rcond = clock.NewCond(s.mu)
		s.blocks = make(map[int64][]byte)
		s.consumed = make(map[int64]map[int]bool)
		s.dead = make(map[int64]bool)
		s.inCache = make(map[int64]bool)
	}
	b.smu = simclock.NewMutex(clock)
	b.wcond = clock.NewCond(b.smu)
	b.cmu = simclock.NewMutex(clock)
	b.SetObserver(nil)
	return b
}

// SetObserver routes the buffer's metrics to o; nil discards them. Metrics
// carry the buffer key as a label, so concurrent couplings stay separable.
func (b *Buffer) SetObserver(o *obs.Observer) {
	kv := func(name string) string { return obs.Key(name, "key", b.key) }
	ins := &bufInstruments{
		puts:       o.Counter(kv("gb.put.total")),
		gets:       o.Counter(kv("gb.get.total")),
		spills:     o.Counter(kv("gb.spill.total")),
		cacheReads: o.Counter(kv("gb.cache.read.total")),
		putStall:   o.Histogram(kv("gb.put.stall_ms")),
		readWait:   o.Histogram(kv("gb.read.wait_ms")),
		resident:   o.Gauge(kv("gb.resident.blocks")),
		fanout:     o.Gauge(kv("gb.readers.attached")),
		shardCount: o.Gauge(kv("buf.shard.count")),
		contended:  o.Counter(kv("buf.shard.contended.total")),
	}
	ins.shardCount.Set(int64(len(b.shards)))
	b.ins.Store(ins)
}

// Key reports the buffer's global name.
func (b *Buffer) Key() string { return b.key }

// BlockSize reports the negotiated block size.
func (b *Buffer) BlockSize() int { return b.opts.blockSize() }

// Shards reports the block-table shard count (for tests and metrics).
func (b *Buffer) Shards() int { return len(b.shards) }

func (b *Buffer) shard(idx int64) *shard { return &b.shards[idx&b.mask] }

// lockShard acquires s.mu, counting the acquisition as contended when it
// could not be taken immediately.
func (b *Buffer) lockShard(s *shard) {
	if s.mu.TryLock() {
		return
	}
	b.ins.Load().contended.Inc()
	s.mu.Lock()
}

// copyIn copies data into a pooled payload (capacity == blockSize).
func (b *Buffer) copyIn(data []byte) []byte {
	buf := b.pool.Get().([]byte)
	if cap(buf) < len(data) {
		buf = make([]byte, len(data))
	}
	buf = buf[:len(data)]
	copy(buf, data)
	return buf
}

// Recycle returns a payload obtained from Get/GetKeep to the block pool.
// Optional: callers that keep the slice simply let the GC have it.
func (b *Buffer) Recycle(p []byte) {
	if cap(p) >= b.opts.blockSize() {
		b.pool.Put(p[:cap(p)])
	}
}

// streamState reads the stream-wide flags consistently.
func (b *Buffer) streamState() (stopped, eof bool, total int64) {
	b.smu.Lock()
	stopped, eof, total = b.stopped, b.eof, b.total
	b.smu.Unlock()
	return
}

// Attach registers a reader and returns its ID.
func (b *Buffer) Attach() int {
	return b.Reattach(-1)
}

// Reattach re-registers a reader after a transport reconnect. When prev is
// still attached the same ID is returned, so a broadcast buffer does not
// count the reconnected reader as a second consumer (a fresh ghost ID would
// inflate the expected fan-out and strand blocks). prev < 0, or a prev that
// already detached, falls back to a fresh Attach.
func (b *Buffer) Reattach(prev int) int {
	b.smu.Lock()
	defer b.smu.Unlock()
	if prev >= 0 && b.attached[prev] {
		return prev
	}
	id := b.nextReader
	b.nextReader++
	b.attached[id] = true
	b.ins.Load().fanout.Set(int64(len(b.attached)))
	return id
}

// Detach unregisters a reader. Blocks it had not consumed become consumable
// by the remaining expectation (they are treated as consumed by id).
func (b *Buffer) Detach(id int) {
	b.smu.Lock()
	if !b.attached[id] {
		b.smu.Unlock()
		return
	}
	delete(b.attached, id)
	b.ins.Load().fanout.Set(int64(len(b.attached)))
	b.smu.Unlock()
	for i := range b.shards {
		s := &b.shards[i]
		b.lockShard(s)
		for idx := range s.blocks {
			b.markConsumedLocked(s, idx, id)
		}
		s.mu.Unlock()
	}
}

// reserveSlot charges one block against Capacity, stalling while the table
// is full of unconsumed blocks.
func (b *Buffer) reserveSlot() error {
	ins := b.ins.Load()
	b.smu.Lock()
	defer b.smu.Unlock()
	stalled := false
	entered := b.clock.Now()
	for {
		if b.stopped {
			return ErrStopped
		}
		if b.eof {
			return errors.New("gridbuffer: put after close-write")
		}
		if b.resident < b.opts.capacity() {
			break
		}
		stalled = true
		b.wcond.Wait()
	}
	if stalled {
		ins.putStall.ObserveDuration(b.clock.Now().Sub(entered))
	}
	b.resident++
	ins.resident.Set(int64(b.resident))
	return nil
}

// releaseSlot returns one capacity slot and wakes stalled writers.
func (b *Buffer) releaseSlot() {
	b.smu.Lock()
	b.resident--
	b.ins.Load().resident.Set(int64(b.resident))
	b.wcond.Broadcast()
	b.smu.Unlock()
}

// Put stores data as block idx, stalling while the table is at capacity
// with unconsumed blocks. Overwriting a resident block never stalls.
func (b *Buffer) Put(idx int64, data []byte) error {
	if idx < 0 {
		return fmt.Errorf("gridbuffer: negative block index %d", idx)
	}
	b.ins.Load().puts.Inc()
	s := b.shard(idx)
	b.lockShard(s)
	if s.dead[idx] || s.inCache[idx] {
		// Every expected reader already consumed this block: the put is a
		// replay of a delivery whose acknowledgement was lost. Accepting it
		// idempotently (rather than parking it forever in the table) is what
		// makes writer-side replay after reconnect safe.
		s.mu.Unlock()
		return nil
	}
	stopped, eof, _ := b.streamState()
	if stopped {
		s.mu.Unlock()
		return ErrStopped
	}
	if eof {
		s.mu.Unlock()
		return errors.New("gridbuffer: put after close-write")
	}
	if old, resident := s.blocks[idx]; resident {
		s.blocks[idx] = b.copyIn(data)
		b.Recycle(old)
		s.rcond.Broadcast()
		s.mu.Unlock()
		b.noteWritten(idx)
		return nil
	}
	s.mu.Unlock()

	if err := b.reserveSlot(); err != nil {
		return err
	}
	b.lockShard(s)
	if s.dead[idx] || s.inCache[idx] {
		s.mu.Unlock()
		b.releaseSlot()
		return nil
	}
	if old, resident := s.blocks[idx]; resident {
		// A racing replay beat us to the slot; overwrite in place.
		s.blocks[idx] = b.copyIn(data)
		b.Recycle(old)
		s.rcond.Broadcast()
		s.mu.Unlock()
		b.releaseSlot()
		b.noteWritten(idx)
		return nil
	}
	s.blocks[idx] = b.copyIn(data)
	s.rcond.Broadcast()
	s.mu.Unlock()
	b.noteWritten(idx)
	return nil
}

func (b *Buffer) noteWritten(idx int64) {
	for {
		w := b.written.Load()
		if idx < w {
			return
		}
		if b.written.CompareAndSwap(w, idx+1) {
			return
		}
	}
}

// CloseWrite marks end-of-stream with the total byte length. A repeat with
// the same total is an idempotent no-op (a writer re-sending close after a
// lost acknowledgement); a conflicting total is an error.
func (b *Buffer) CloseWrite(totalBytes int64) error {
	b.smu.Lock()
	if b.eof {
		same := b.total == totalBytes
		b.smu.Unlock()
		if same {
			return nil
		}
		return errors.New("gridbuffer: duplicate close-write")
	}
	b.eof = true
	b.total = totalBytes
	b.wcond.Broadcast() // stalled writers must fail with put-after-close
	b.smu.Unlock()
	b.broadcastShards()
	return nil
}

// broadcastShards wakes every waiting reader, taking each shard lock so a
// reader between its predicate check and its wait cannot miss the wakeup.
func (b *Buffer) broadcastShards() {
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		s.rcond.Broadcast()
		s.mu.Unlock()
	}
}

// EOF reports whether the writer has closed, and the total length if so.
func (b *Buffer) EOF() (bool, int64) {
	b.smu.Lock()
	defer b.smu.Unlock()
	return b.eof, b.total
}

// blockLen reports the valid length of block idx given the stream state.
func (b *Buffer) blockLen(idx int64, eof bool, total int64) int {
	bs := int64(b.opts.blockSize())
	if !eof {
		return int(bs)
	}
	start := idx * bs
	if start >= total {
		return 0
	}
	if start+bs > total {
		return int(total - start)
	}
	return int(bs)
}

// Get returns the contents of block idx for reader id, blocking until the
// block has been written. It returns (nil, true, nil) when idx is at or past
// end-of-stream. Reading a block the reader already consumed is served from
// the resident table or the cache file.
func (b *Buffer) Get(id int, idx int64) (data []byte, eof bool, err error) {
	return b.get(id, idx, true)
}

// GetKeep is Get without the consume: the block stays resident (charged
// against capacity) until the reader acknowledges it via AckBelow. The
// resilient binary transport uses this pair so a delivery lost on the wire
// can be re-requested after reconnect.
func (b *Buffer) GetKeep(id int, idx int64) (data []byte, eof bool, err error) {
	return b.get(id, idx, false)
}

// AckBelow marks every resident block with index < upto as consumed by
// reader id (spilling to the cache file as usual), freeing capacity for the
// writer.
func (b *Buffer) AckBelow(id int, upto int64) {
	for i := range b.shards {
		s := &b.shards[i]
		b.lockShard(s)
		for idx := range s.blocks {
			if idx < upto {
				b.markConsumedLocked(s, idx, id)
			}
		}
		s.mu.Unlock()
	}
}

func (b *Buffer) get(id int, idx int64, consume bool) (data []byte, eof bool, err error) {
	if idx < 0 {
		return nil, false, fmt.Errorf("gridbuffer: negative block index %d", idx)
	}
	ins := b.ins.Load()
	ins.gets.Inc()
	s := b.shard(idx)
	b.lockShard(s)
	defer s.mu.Unlock()
	waited := false
	entered := b.clock.Now()
	observeWait := func() {
		if waited {
			ins.readWait.ObserveDuration(b.clock.Now().Sub(entered))
		}
	}
	for {
		stopped, seof, total := b.streamState()
		if stopped {
			return nil, false, ErrStopped
		}
		if data, ok := s.blocks[idx]; ok {
			observeWait()
			out := data
			if n := b.blockLen(idx, seof, total); n < len(out) {
				out = out[:n]
			}
			cp := b.copyIn(out)
			if consume {
				b.markConsumedLocked(s, idx, id)
			}
			return cp, false, nil
		}
		if s.inCache[idx] {
			observeWait()
			return b.readCache(idx, seof, total)
		}
		if seof {
			bs := int64(b.opts.blockSize())
			if idx*bs >= total {
				observeWait()
				return nil, true, nil
			}
			// The block existed but was dropped without a cache: the reader
			// attached too late or sought backward without cache enabled.
			return nil, false, fmt.Errorf("gridbuffer: block %d of %q no longer available (enable the cache file for re-reads)", idx, b.key)
		}
		waited = true
		s.rcond.Wait()
	}
}

// markConsumedLocked records that id has read idx and drops the block once
// every expected reader has it (spilling to the cache file first). The
// caller holds the shard lock of idx.
func (b *Buffer) markConsumedLocked(s *shard, idx int64, id int) {
	set := s.consumed[idx]
	if set == nil {
		set = make(map[int]bool)
		s.consumed[idx] = set
	}
	if set[id] {
		return
	}
	set[id] = true
	if len(set) < b.opts.readers() {
		return
	}
	data, ok := s.blocks[idx]
	if !ok {
		return
	}
	if b.opts.Cache {
		b.spill(s, idx, data)
	}
	delete(s.blocks, idx)
	if !s.inCache[idx] {
		s.dead[idx] = true
	}
	delete(s.consumed, idx)
	b.Recycle(data)
	b.releaseSlot()
}

func (b *Buffer) cachePath() string {
	if b.opts.CachePath != "" {
		return b.opts.CachePath
	}
	return ".gridbuffer-cache/" + b.key
}

// spill writes idx to the cache file; the caller holds the shard lock.
func (b *Buffer) spill(s *shard, idx int64, data []byte) {
	if b.opts.CacheFS == nil {
		return
	}
	b.cmu.Lock()
	defer b.cmu.Unlock()
	if b.cacheFile == nil {
		f, err := b.opts.CacheFS.OpenFile(b.cachePath(), vfs.ReadWriteFlag, 0o644)
		if err != nil {
			return // cache is best-effort; re-reads will fail loudly instead
		}
		b.cacheFile = f
	}
	if _, err := b.cacheFile.WriteAt(data, idx*int64(b.opts.blockSize())); err == nil {
		s.inCache[idx] = true
		b.ins.Load().spills.Inc()
	}
}

func (b *Buffer) readCache(idx int64, eof bool, total int64) ([]byte, bool, error) {
	b.cmu.Lock()
	defer b.cmu.Unlock()
	if b.cacheFile == nil {
		return nil, false, fmt.Errorf("gridbuffer: cache file missing for %q", b.key)
	}
	b.ins.Load().cacheReads.Inc()
	n := b.blockLen(idx, eof, total)
	buf := make([]byte, n)
	got, err := b.cacheFile.ReadAt(buf, idx*int64(b.opts.blockSize()))
	if err != nil && got < n {
		return nil, false, fmt.Errorf("gridbuffer: cache read of block %d: %w", idx, err)
	}
	return buf[:got], false, nil
}

// Resident reports the number of blocks currently in the hash table.
func (b *Buffer) Resident() int {
	b.smu.Lock()
	defer b.smu.Unlock()
	return b.resident
}

// Drop aborts the buffer: all blocked operations return ErrStopped and the
// cache file is closed.
func (b *Buffer) Drop() {
	b.smu.Lock()
	if b.stopped {
		b.smu.Unlock()
		return
	}
	b.stopped = true
	b.wcond.Broadcast()
	b.smu.Unlock()
	b.cmu.Lock()
	if b.cacheFile != nil {
		b.cacheFile.Close()
		b.cacheFile = nil
	}
	b.cmu.Unlock()
	b.broadcastShards()
}
