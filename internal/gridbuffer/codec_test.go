package gridbuffer

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"griddles/internal/simclock"
	"griddles/internal/simnet"
	"griddles/internal/vfs"
	"griddles/internal/wire"
)

// TestWritePutFrameMatchesEncoder pins wire-byte identity of the vectored
// raw put path against the historical Encoder-assembled frames, for both
// the one-block PUT and the PUT-BATCH shape.
func TestWritePutFrameMatchesEncoder(t *testing.T) {
	cases := [][]wblock{
		{{idx: 0, data: []byte("hello world block")}},
		{{idx: 3, data: bytes.Repeat([]byte{7}, 4096)}, {idx: 4, data: []byte{}}, {idx: 5, data: []byte("tail")}},
	}
	for _, blocks := range cases {
		e := wire.NewEncoder()
		typ := putFrame(e, "k", blocks)
		var want bytes.Buffer
		if err := wire.WriteFrame(&want, typ, e.Bytes()); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := writePutFrame(&got, "k", blocks, nil); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("vectored frame differs from encoder frame for %d blocks", len(blocks))
		}
	}
}

// TestCodecStreamRoundTrip: a writer and reader that both negotiate lzb
// move byte-identical content, batched and unbatched.
func TestCodecStreamRoundTrip(t *testing.T) {
	for _, batch := range []int{1, 4} {
		b := newBrig(simnet.LinkSpec{Latency: 2 * time.Millisecond})
		want := bytes.Repeat([]byte("sensor,42,1013.25,ok\n"), 5000)
		b.v.Run(func() {
			b.start(t)
			var got []byte
			done := simclock.NewWaitGroup(b.v)
			done.Add(1)
			b.v.Go("reader", func() {
				defer done.Done()
				r, err := NewReader(b.net.Host("r"), b.addr, b.v, "k", Options{}, ReaderOptions{Codec: wire.CodecLZB})
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				defer r.Close()
				data, err := io.ReadAll(r)
				if err != nil {
					t.Errorf("readall: %v", err)
					return
				}
				got = data
			})
			w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{},
				WriterOptions{Codec: wire.CodecLZB, Window: 8, Batch: batch})
			if err != nil {
				t.Fatalf("writer: %v", err)
			}
			if _, err := w.Write(want); err != nil {
				t.Fatalf("write: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			done.Wait()
			if !bytes.Equal(got, want) {
				t.Fatalf("batch=%d: reader got %d bytes, want %d (content mismatch)", batch, len(got), len(want))
			}
		})
	}
}

// TestCodecMixedRawReader: a raw reader and an lzb writer share one buffer —
// the server stores decoded blocks, so per-link codecs never leak across
// connections.
func TestCodecMixedRawReader(t *testing.T) {
	b := newBrig(simnet.LinkSpec{Latency: time.Millisecond})
	want := bytes.Repeat([]byte("0123456789abcdef"), 8000)
	b.v.Run(func() {
		b.start(t)
		var got []byte
		done := simclock.NewWaitGroup(b.v)
		done.Add(1)
		b.v.Go("reader", func() {
			defer done.Done()
			r, err := NewReader(b.net.Host("r"), b.addr, b.v, "k", Options{}, ReaderOptions{})
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			defer r.Close()
			data, err := io.ReadAll(r)
			if err != nil {
				t.Errorf("readall: %v", err)
				return
			}
			got = data
		})
		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{},
			WriterOptions{Codec: wire.CodecLZB, Window: 4, Batch: 2})
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
		if _, err := w.Write(want); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		done.Wait()
		if !bytes.Equal(got, want) {
			t.Fatal("raw reader saw different bytes than the lzb writer sent")
		}
	})
}

// serveOldAttach is a frame-level stand-in for a pre-codec server build: it
// decodes the attach request with the historical field list (silently
// ignoring any trailing bytes, as the old decoder did) and answers the
// historical two-field response, then handles puts, gets and close-write
// raw. A codec-requesting client must detect the missing response field and
// keep the stream raw.
func serveOldAttach(clock simclock.Clock, reg *Registry, l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		clock.Go("old-gb-conn", func() {
			defer conn.Close()
			br := bufio.NewReader(conn)
			bw := bufio.NewWriter(conn)
			for {
				typ, payload, err := wire.ReadFrame(br)
				if err != nil {
					return
				}
				d := wire.NewDecoder(payload)
				switch typ {
				case msgAttach:
					key := d.String()
					role := d.U8()
					opts := decodeOptions(d)
					prev := int(d.I64())
					// Old decoders stopped here; trailing codec bytes vanish.
					b := reg.GetOrCreate(key, opts)
					readerID := -1
					if role == roleReader {
						readerID = b.Reattach(prev)
					}
					e := wire.NewEncoder()
					e.I64(int64(readerID)).U32(uint32(b.BlockSize()))
					wire.WriteFrame(bw, msgAttachResp, e.Bytes())
				case msgPut:
					key := d.String()
					idx := d.I64()
					data := d.Bytes32()
					b, _ := reg.Lookup(key)
					if err := b.Put(idx, data); err != nil {
						writeError(bw, err)
					} else {
						wire.WriteFrame(bw, msgPutResp, nil)
					}
				case msgGetWin:
					req, derr := decodeGetWin(d)
					if derr != nil {
						writeError(bw, derr)
						break
					}
					b, _ := reg.Lookup(req.key)
					if req.ackBelow > 0 {
						b.AckBelow(req.readerID, req.ackBelow)
					}
					for i := 0; i < req.count; i++ {
						idx := req.first + int64(i)
						data, eof, gerr := b.GetKeep(req.readerID, idx)
						if gerr != nil {
							writeError(bw, gerr)
							break
						}
						e := wire.NewEncoder()
						e.I64(idx).Bool(eof).Bytes32(data)
						wire.WriteFrame(bw, msgGetWinResp, e.Bytes())
						b.Recycle(data)
						bw.Flush()
					}
				case msgCloseWrite:
					key := d.String()
					total := d.I64()
					b, _ := reg.Lookup(key)
					if err := b.CloseWrite(total); err != nil {
						writeError(bw, err)
					} else {
						wire.WriteFrame(bw, msgCloseWriteResp, nil)
					}
				case msgDetach:
					wire.WriteFrame(bw, msgDetachResp, nil)
				default:
					writeError(bw, errUnknownOldType)
				}
				if bw.Flush() != nil {
					return
				}
			}
		})
	}
}

var errUnknownOldType = io.ErrUnexpectedEOF

// TestCodecOldServerStaysRaw: a codec-requesting writer and reader against
// a pre-codec server build complete the stream raw and lossless.
func TestCodecOldServerStaysRaw(t *testing.T) {
	v := simclock.NewVirtualDefault()
	n := simnet.New(v)
	n.SetLinkBoth("w", "buf", simnet.LinkSpec{Latency: time.Millisecond})
	n.SetLinkBoth("r", "buf", simnet.LinkSpec{Latency: time.Millisecond})
	reg := NewRegistry(v, vfs.NewMemFS())
	want := bytes.Repeat([]byte("legacy-peer-data"), 6000)
	v.Run(func() {
		l, err := n.Host("buf").Listen("buf:7999")
		if err != nil {
			t.Fatal(err)
		}
		v.Go("old-gb-serve", func() { serveOldAttach(v, reg, l) })

		var got []byte
		done := simclock.NewWaitGroup(v)
		done.Add(1)
		v.Go("reader", func() {
			defer done.Done()
			r, err := NewReader(n.Host("r"), "buf:7999", v, "k", Options{}, ReaderOptions{Codec: wire.CodecLZB})
			if err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			defer r.Close()
			data, err := io.ReadAll(r)
			if err != nil {
				t.Errorf("readall: %v", err)
				return
			}
			got = data
		})
		w, err := NewWriter(n.Host("w"), "buf:7999", v, "k", Options{}, WriterOptions{Codec: wire.CodecLZB})
		if err != nil {
			t.Fatalf("writer attach against old server: %v", err)
		}
		if w.cs.active() {
			t.Fatal("writer negotiated a codec against a pre-codec server")
		}
		if _, err := w.Write(want); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		done.Wait()
		if !bytes.Equal(got, want) {
			t.Fatal("old-server stream corrupted the data")
		}
	})
}
