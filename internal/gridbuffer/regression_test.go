package gridbuffer

import (
	"io"
	"testing"
	"time"

	"griddles/internal/simclock"
	"griddles/internal/simnet"
	"griddles/internal/vfs"
)

// TestRepeatedPersistentStreamNoDeadlock re-runs the persistent pipelined
// stream many times to flush out scheduler-order-dependent deadlocks.
func TestRepeatedPersistentStreamNoDeadlock(t *testing.T) {
	for iter := 0; iter < 40; iter++ {
		v := simclock.NewVirtualDefault()
		n := simnet.New(v)
		n.SetLinkBoth("w", "buf", simnet.LinkSpec{Latency: 150 * time.Millisecond, Bandwidth: 1 << 20})
		n.SetWindow(8 * 1024)
		reg := NewRegistry(v, vfs.NewMemFS())
		addr := nextBufAddr()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("iter %d: %v", iter, r)
				}
			}()
			v.Run(func() {
				l, err := n.Host("buf").Listen(addr)
				if err != nil {
					t.Fatal(err)
				}
				v.Go("serve", func() { NewServer(reg, v).Serve(l) })
				opts := Options{BlockSize: 4096, Capacity: 1 << 20}
				done := simclock.NewWaitGroup(v)
				done.Add(1)
				v.Go("reader", func() {
					defer done.Done()
					r, err := NewReader(n.Host("buf"), addr, v, "k", opts, ReaderOptions{Depth: 8})
					if err != nil {
						t.Error(err)
						return
					}
					defer r.Close()
					io.Copy(io.Discard, r)
				})
				w, err := NewWriter(n.Host("w"), addr, v, "k", opts, WriterOptions{Window: 2})
				if err != nil {
					t.Fatal(err)
				}
				w.Write(make([]byte, 1<<20))
				w.Close()
				done.Wait()
			})
		}()
	}
}
