package gridbuffer

import (
	"errors"
	"net"
	"testing"
	"time"

	"griddles/internal/admit"
	"griddles/internal/retry"
	"griddles/internal/simnet"
)

// tempAcceptErr mimics an EMFILE-style transient accept failure.
type tempAcceptErr struct{}

func (tempAcceptErr) Error() string   { return "accept: resource temporarily unavailable" }
func (tempAcceptErr) Temporary() bool { return true }

// flakyListener fails its first `fails` Accepts with a temporary error.
type flakyListener struct {
	net.Listener
	fails int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.fails > 0 {
		l.fails--
		return nil, tempAcceptErr{}
	}
	return l.Listener.Accept()
}

func TestServeSurvivesFlakyAccept(t *testing.T) {
	b := newBrig(simnet.LinkSpec{Latency: time.Millisecond})
	b.v.Run(func() {
		l, err := b.net.Host("buf").Listen(b.addr)
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		b.v.Go("gb-serve", func() { NewServer(b.reg, b.v).Serve(&flakyListener{Listener: l, fails: 3}) })
		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k", Options{}, WriterOptions{})
		if err != nil {
			t.Fatalf("writer through flaky listener: %v", err)
		}
		if _, err := w.Write([]byte("hello")); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	})
}

func TestAttachShedThenRetrySucceeds(t *testing.T) {
	b := newBrig(simnet.LinkSpec{Latency: time.Millisecond})
	b.v.Run(func() {
		l, err := b.net.Host("buf").Listen(b.addr)
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv := NewServer(b.reg, b.v)
		// One stream slot, no queue, no latency target: a static per-stream
		// cap, held from Attach to connection close.
		ctl := admit.New(admit.Options{Service: "buf", MaxConcurrent: 1, ControlShare: -1, Clock: b.v})
		srv.SetAdmission(ctl)
		b.v.Go("gb-serve", func() { srv.Serve(l) })

		w, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k1", Options{}, WriterOptions{})
		if err != nil {
			t.Fatalf("first writer: %v", err)
		}

		// The second stream sheds at Attach — mid-stream traffic of the
		// first is never disturbed.
		_, err = NewWriter(b.net.Host("w"), b.addr, b.v, "k2", Options{}, WriterOptions{})
		var shed *admit.ShedError
		if !errors.As(err, &shed) {
			t.Fatalf("second attach err = %v, want ShedError", err)
		}

		if _, err := w.Write([]byte("hello")); err != nil {
			t.Fatalf("write on admitted stream: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		// The writer's connection is gone; its slot frees and a retrying
		// attach gets in.
		w2, err := NewWriter(b.net.Host("w"), b.addr, b.v, "k2", Options{}, WriterOptions{
			Retry: retry.Policy{
				MaxAttempts: 5, BaseDelay: 50 * time.Millisecond,
				AttemptTimeout: time.Second, Clock: b.v,
			},
		})
		if err != nil {
			t.Fatalf("attach after release: %v", err)
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("close second writer: %v", err)
		}
	})
}
