package gridbuffer

import (
	"bytes"
	"testing"

	"griddles/internal/wire"
)

// FuzzDecodePutBatch: arbitrary payloads never panic the PUT-BATCH decoder,
// and anything it accepts survives an encode → decode round trip.
func FuzzDecodePutBatch(f *testing.F) {
	e := wire.NewEncoder()
	encodePutBatch(e, "wf/stream", []wblock{
		{idx: 0, data: []byte("first block")},
		{idx: 1, data: []byte("second")},
	})
	f.Add(e.Bytes())
	e = wire.NewEncoder()
	encodePutBatch(e, "", nil)
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodePutBatch(wire.NewDecoder(data))
		if err != nil {
			return
		}
		e := wire.NewEncoder()
		encodePutBatch(e, req.key, req.blocks)
		again, err := decodePutBatch(wire.NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of a re-encoded batch failed: %v", err)
		}
		if again.key != req.key || len(again.blocks) != len(req.blocks) {
			t.Fatalf("round trip changed the batch: key %q->%q, %d->%d blocks",
				req.key, again.key, len(req.blocks), len(again.blocks))
		}
		for i := range req.blocks {
			if again.blocks[i].idx != req.blocks[i].idx ||
				!bytes.Equal(again.blocks[i].data, req.blocks[i].data) {
				t.Fatalf("round trip changed block %d", i)
			}
		}
	})
}

// FuzzDecodeGetWin: arbitrary payloads never panic the windowed-GET
// decoder, and accepted requests round-trip exactly.
func FuzzDecodeGetWin(f *testing.F) {
	e := wire.NewEncoder()
	encodeGetWin(e, getWinReq{key: "wf/stream", readerID: 2, first: 7, count: 8, ackBelow: 5})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeGetWin(wire.NewDecoder(data))
		if err != nil {
			return
		}
		e := wire.NewEncoder()
		encodeGetWin(e, req)
		again, err := decodeGetWin(wire.NewDecoder(e.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of a re-encoded request failed: %v", err)
		}
		if again != req {
			t.Fatalf("round trip changed the request: %+v -> %+v", req, again)
		}
	})
}

// FuzzDecodeOptions: the options codec is total — any input decodes to an
// Options value that survives encode → decode unchanged.
func FuzzDecodeOptions(f *testing.F) {
	e := wire.NewEncoder()
	encodeOptions(e, Options{BlockSize: 1 << 15, Capacity: 64, Cache: true,
		CachePath: "/cache/k", Readers: 2, Shards: 16})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		o := decodeOptions(wire.NewDecoder(data))
		e := wire.NewEncoder()
		encodeOptions(e, o)
		again := decodeOptions(wire.NewDecoder(e.Bytes()))
		// CacheFS is never on the wire; everything else must round-trip.
		if again.BlockSize != o.BlockSize || again.Capacity != o.Capacity ||
			again.Cache != o.Cache || again.CachePath != o.CachePath ||
			again.Readers != o.Readers || again.Shards != o.Shards {
			t.Fatalf("round trip changed the options: %+v -> %+v", o, again)
		}
	})
}
