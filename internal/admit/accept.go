package admit

import (
	"errors"
	"net"
	"time"

	"griddles/internal/simclock"
)

// Temporary reports whether err is a transient accept failure the server
// should ride out with backoff rather than die on: anything advertising a
// Temporary() method that returns true (net.Error timeouts, EMFILE-style
// conditions). A closed listener is never temporary.
func Temporary(err error) bool {
	if err == nil || errors.Is(err, net.ErrClosed) {
		return false
	}
	var t interface{ Temporary() bool }
	if errors.As(err, &t) {
		return t.Temporary()
	}
	return false
}

// Backoff bounds for AcceptBackoff.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = time.Second
)

// AcceptBackoff paces retries of a failing Accept loop: each consecutive
// failure doubles the sleep from 5ms up to a 1s cap, and a success resets
// it. It keeps a wedged listener from spinning the CPU while staying
// responsive once the condition clears.
type AcceptBackoff struct {
	clock simclock.Clock
	next  time.Duration
}

// NewAcceptBackoff returns a backoff paced by clock.
func NewAcceptBackoff(clock simclock.Clock) *AcceptBackoff {
	return &AcceptBackoff{clock: clock}
}

// Sleep waits the current backoff interval and doubles it for next time.
func (b *AcceptBackoff) Sleep() {
	if b.next <= 0 {
		b.next = acceptBackoffMin
	}
	b.clock.Sleep(b.next)
	if b.next *= 2; b.next > acceptBackoffMax {
		b.next = acceptBackoffMax
	}
}

// Reset clears the backoff after a successful accept.
func (b *AcceptBackoff) Reset() { b.next = 0 }
