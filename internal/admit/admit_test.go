package admit

import (
	"errors"
	"strings"
	"testing"
	"time"

	"griddles/internal/obs"
	"griddles/internal/simclock"
)

// run executes fn inside a fresh virtual clock and returns the clock.
func run(t *testing.T, fn func(v *simclock.Virtual)) *simclock.Virtual {
	t.Helper()
	v := simclock.NewVirtualDefault()
	v.Run(func() { fn(v) })
	return v
}

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	rel, err := c.Acquire("x", Bulk)
	if err != nil {
		t.Fatalf("nil Acquire: %v", err)
	}
	rel()
	rel() // idempotent
	if crel, ok := c.AdmitConn(); !ok {
		t.Fatal("nil AdmitConn refused")
	} else {
		crel()
	}
	if c.Limit() != 0 || c.Inflight() != 0 {
		t.Fatal("nil introspection not zero")
	}
}

func TestAcquireReleaseCounts(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		c := New(Options{Service: "t", MaxConcurrent: 4, Clock: v})
		var rels []func()
		for i := 0; i < 3; i++ {
			rel, err := c.Acquire("a", Bulk)
			if err != nil {
				t.Fatalf("acquire %d: %v", i, err)
			}
			rels = append(rels, rel)
		}
		if got := c.Inflight(); got != 3 {
			t.Fatalf("inflight = %d, want 3", got)
		}
		for _, rel := range rels {
			rel()
			rel() // double release must not corrupt counts
		}
		if got := c.Inflight(); got != 0 {
			t.Fatalf("inflight after release = %d, want 0", got)
		}
	})
}

func TestQueueFullSheds(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		c := New(Options{Service: "t", MaxConcurrent: 1, ControlShare: -1, Clock: v})
		rel, err := c.Acquire("a", Bulk)
		if err != nil {
			t.Fatalf("first acquire: %v", err)
		}
		defer rel()
		// QueueDepth 0: the second request sheds immediately.
		_, err = c.Acquire("b", Bulk)
		var shed *ShedError
		if !errors.As(err, &shed) {
			t.Fatalf("err = %v, want ShedError", err)
		}
		if shed.Reason != "queue-full" {
			t.Fatalf("reason = %q, want queue-full", shed.Reason)
		}
		if shed.RetryAfter() <= 0 || shed.RetryAfter() > MaxRetryAfter {
			t.Fatalf("retry-after out of range: %v", shed.RetryAfter())
		}
	})
}

func TestQueueTimeoutSheds(t *testing.T) {
	v := simclock.NewVirtualDefault()
	v.Run(func() {
		c := New(Options{
			Service: "t", MaxConcurrent: 1, ControlShare: -1,
			QueueDepth: 4, MaxQueueWait: 50 * time.Millisecond, Clock: v,
		})
		rel, err := c.Acquire("a", Bulk)
		if err != nil {
			t.Fatalf("first acquire: %v", err)
		}
		start := v.Now()
		_, err = c.Acquire("b", Bulk)
		var shed *ShedError
		if !errors.As(err, &shed) || shed.Reason != "queue-timeout" {
			t.Fatalf("err = %v, want queue-timeout ShedError", err)
		}
		if waited := v.Now().Sub(start); waited < 50*time.Millisecond {
			t.Fatalf("shed after %v, want >= MaxQueueWait", waited)
		}
		rel()
		// The timed-out waiter left the queue: freed capacity is usable.
		rel2, err := c.Acquire("b", Bulk)
		if err != nil {
			t.Fatalf("post-timeout acquire: %v", err)
		}
		rel2()
	})
}

func TestQueuedWaiterGrantedOnRelease(t *testing.T) {
	v := simclock.NewVirtualDefault()
	v.Run(func() {
		c := New(Options{
			Service: "t", MaxConcurrent: 1, ControlShare: -1,
			QueueDepth: 4, MaxQueueWait: time.Second, Clock: v,
		})
		rel, err := c.Acquire("a", Bulk)
		if err != nil {
			t.Fatalf("first acquire: %v", err)
		}
		done := simclock.NewEvent(v)
		v.Go("waiter", func() {
			rel2, err2 := c.Acquire("b", Bulk)
			if err2 != nil {
				t.Errorf("queued acquire: %v", err2)
			} else {
				rel2()
			}
			done.Set()
		})
		v.Sleep(10 * time.Millisecond) // let the waiter enqueue
		rel()
		done.Wait()
	})
}

func TestControlServedBeforeBulk(t *testing.T) {
	v := simclock.NewVirtualDefault()
	v.Run(func() {
		c := New(Options{
			Service: "t", MaxConcurrent: 1, ControlShare: -1,
			QueueDepth: 8, MaxQueueWait: time.Minute, Clock: v,
		})
		rel, err := c.Acquire("a", Bulk)
		if err != nil {
			t.Fatalf("first acquire: %v", err)
		}
		var order []string
		orderMu := simclock.NewMutex(v)
		wg := simclock.NewWaitGroup(v)
		spawn := func(name string, class Class) {
			wg.Add(1)
			v.Go(name, func() {
				defer wg.Done()
				rel2, err2 := c.Acquire("x", class)
				if err2 != nil {
					t.Errorf("%s acquire: %v", name, err2)
					return
				}
				orderMu.Lock()
				order = append(order, name)
				orderMu.Unlock()
				rel2()
			})
		}
		spawn("bulk1", Bulk)
		v.Sleep(time.Millisecond) // bulk1 queues first
		spawn("ctrl1", Control)
		v.Sleep(time.Millisecond)
		rel()
		wg.Wait()
		if len(order) != 2 || order[0] != "ctrl1" {
			t.Fatalf("grant order = %v, want control first", order)
		}
	})
}

func TestBulkReserveLeavesRoomForControl(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		// limit 4, ControlShare 0.25 -> bulk ceiling 3.
		c := New(Options{Service: "t", MaxConcurrent: 4, ControlShare: 0.25, Clock: v})
		for i := 0; i < 3; i++ {
			if _, err := c.Acquire("a", Bulk); err != nil {
				t.Fatalf("bulk %d: %v", i, err)
			}
		}
		if _, err := c.Acquire("a", Bulk); err == nil {
			t.Fatal("4th bulk admitted into the control reserve")
		}
		if _, err := c.Acquire("a", Control); err != nil {
			t.Fatalf("control refused its reserved slot: %v", err)
		}
	})
}

func TestPerTenantCap(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		c := New(Options{Service: "t", MaxConcurrent: 8, ControlShare: -1, MaxPerTenant: 2, Clock: v})
		if _, err := c.Acquire("hog", Bulk); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Acquire("hog", Bulk); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Acquire("hog", Bulk); err == nil {
			t.Fatal("tenant admitted over its cap")
		}
		// Another tenant still gets in.
		if _, err := c.Acquire("meek", Bulk); err != nil {
			t.Fatalf("other tenant refused: %v", err)
		}
	})
}

func TestAIMDDecreaseAndRecovery(t *testing.T) {
	v := simclock.NewVirtualDefault()
	v.Run(func() {
		c := New(Options{
			Service: "t", MaxConcurrent: 10, MinConcurrent: 2,
			TargetLatency: 10 * time.Millisecond, ControlShare: -1, Clock: v,
		})
		slow := func() {
			rel, err := c.Acquire("a", Bulk)
			if err != nil {
				t.Fatalf("acquire: %v", err)
			}
			v.Sleep(50 * time.Millisecond) // 5x over target
			rel()
		}
		before := c.Limit()
		slow()
		after := c.Limit()
		if after >= before {
			t.Fatalf("limit did not shrink: %d -> %d", before, after)
		}
		// Cooldown: an immediate second over-target release must not cut again.
		rel, _ := c.Acquire("a", Bulk)
		v.Sleep(50 * time.Microsecond)
		rel() // within cooldown window even if it were slow
		// Drive the limit to the floor with spaced slow requests.
		for i := 0; i < 20; i++ {
			v.Sleep(20 * time.Millisecond) // clear the cooldown
			slow()
		}
		if got := c.Limit(); got != 2 {
			t.Fatalf("limit floor = %d, want MinConcurrent 2", got)
		}
		// Fast requests grow it back.
		for i := 0; i < 200; i++ {
			rel, err := c.Acquire("a", Bulk)
			if err != nil {
				t.Fatalf("fast acquire: %v", err)
			}
			rel()
		}
		if got := c.Limit(); got <= 2 {
			t.Fatalf("limit did not recover: %d", got)
		}
	})
}

func TestStaticLimitWithoutTarget(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		c := New(Options{Service: "t", MaxConcurrent: 5, Clock: v})
		rel, err := c.Acquire("a", Bulk)
		if err != nil {
			t.Fatal(err)
		}
		v.Sleep(10 * time.Second) // enormous latency; no target -> no adaptation
		rel()
		if got := c.Limit(); got != 5 {
			t.Fatalf("static limit moved: %d", got)
		}
	})
}

func TestAdmitConnBound(t *testing.T) {
	run(t, func(v *simclock.Virtual) {
		c := New(Options{Service: "t", MaxConcurrent: 4, MaxConns: 2, Clock: v})
		rel1, ok := c.AdmitConn()
		if !ok {
			t.Fatal("conn 1 refused")
		}
		rel2, ok := c.AdmitConn()
		if !ok {
			t.Fatal("conn 2 refused")
		}
		if _, ok := c.AdmitConn(); ok {
			t.Fatal("conn 3 admitted over MaxConns")
		}
		rel1()
		rel1() // idempotent
		if rel3, ok := c.AdmitConn(); !ok {
			t.Fatal("conn refused after release")
		} else {
			rel3()
		}
		rel2()
	})
}

func TestShedMetricsAndDecisionEvent(t *testing.T) {
	v := simclock.NewVirtualDefault()
	o := obs.New(v)
	v.Run(func() {
		c := New(Options{Service: "svc", MaxConcurrent: 1, ControlShare: -1, Clock: v, Obs: o})
		rel, err := c.Acquire("a", Bulk)
		if err != nil {
			t.Fatal(err)
		}
		defer rel()
		if _, err := c.Acquire("b", Bulk); err == nil {
			t.Fatal("expected shed")
		}
	})
	snap := o.Snapshot()
	shedKey := obs.Key("admit.shed.total", "service", "svc", "class", "bulk", "reason", "queue-full")
	if snap.Counters[shedKey] != 1 {
		t.Fatalf("%s = %d, want 1", shedKey, snap.Counters[shedKey])
	}
	admitKey := obs.Key("admit.admitted.total", "service", "svc", "class", "bulk")
	if snap.Counters[admitKey] != 1 {
		t.Fatalf("%s = %d, want 1", admitKey, snap.Counters[admitKey])
	}
	var sawDecision bool
	for _, ev := range o.Events() {
		if ev.Type == "admit.decision" {
			sawDecision = true
		}
	}
	if !sawDecision {
		t.Fatal("no admit.decision event emitted on shed")
	}
}

func TestShedCodecRoundTrip(t *testing.T) {
	in := &ShedError{Service: "svc", Reason: "queue-full", After: 250 * time.Millisecond}
	out, err := DecodeShed(EncodeShed(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Reason != in.Reason || out.After != in.After {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
	if !strings.Contains(out.Error(), "queue-full") {
		t.Fatalf("error text: %q", out.Error())
	}
}

func TestDecodeShedHostileInputs(t *testing.T) {
	if _, err := DecodeShed(nil); err == nil {
		t.Fatal("nil payload decoded")
	}
	if _, err := DecodeShed([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated payload decoded")
	}
	// Negative hint clamps to zero, huge hint clamps to MaxRetryAfter.
	neg := EncodeShed(&ShedError{Reason: "x", After: -time.Second})
	if out, err := DecodeShed(neg); err != nil || out.After != 0 {
		t.Fatalf("negative hint: %v %+v", err, out)
	}
	big, err := DecodeShed(EncodeShed(&ShedError{Reason: "x", After: time.Hour}))
	if err != nil || big.After != MaxRetryAfter {
		t.Fatalf("huge hint: %v %+v", err, big)
	}
}

type tempErr struct{ temp bool }

func (e tempErr) Error() string   { return "tempErr" }
func (e tempErr) Temporary() bool { return e.temp }

func TestTemporary(t *testing.T) {
	if !Temporary(tempErr{temp: true}) {
		t.Fatal("temporary error not recognized")
	}
	if Temporary(tempErr{temp: false}) {
		t.Fatal("permanent error marked temporary")
	}
	if Temporary(errors.New("plain")) {
		t.Fatal("plain error marked temporary")
	}
	if Temporary(nil) {
		t.Fatal("nil error marked temporary")
	}
}

func TestAcceptBackoffDoublesAndResets(t *testing.T) {
	v := simclock.NewVirtualDefault()
	v.Run(func() {
		b := NewAcceptBackoff(v)
		start := v.Now()
		b.Sleep() // 5ms
		b.Sleep() // 10ms
		b.Sleep() // 20ms
		if got := v.Now().Sub(start); got != 35*time.Millisecond {
			t.Fatalf("backoff slept %v, want 35ms", got)
		}
		for i := 0; i < 20; i++ {
			b.Sleep()
		}
		capStart := v.Now()
		b.Sleep()
		if got := v.Now().Sub(capStart); got != time.Second {
			t.Fatalf("capped sleep = %v, want 1s", got)
		}
		b.Reset()
		resetStart := v.Now()
		b.Sleep()
		if got := v.Now().Sub(resetStart); got != 5*time.Millisecond {
			t.Fatalf("post-reset sleep = %v, want 5ms", got)
		}
	})
}

func TestTenantOf(t *testing.T) {
	// TenantOf strips the port from host:port remote addresses.
	if got := tenantOfAddr("dione:0"); got != "dione" {
		t.Fatalf("tenant = %q", got)
	}
	if got := tenantOfAddr("noport"); got != "noport" {
		t.Fatalf("tenant = %q", got)
	}
}
