// Package admit is the overload-protection layer shared by every GriddLeS
// service: per-tenant/per-stream admission with an adaptive concurrency
// limit, bounded request queues with load shedding, and a two-class
// priority scheme that keeps latency-sensitive control RPCs (GNS
// resolve/set, opens, stats) from starving behind bulk data transfers.
//
// The concurrency limit adapts by AIMD on observed service latency against
// a target (in the style of grailbio/base admit): every release whose
// latency is at or under the target grows the limit additively (~one slot
// per limit's worth of completions), while a release over the target cuts
// it multiplicatively, at most once per cooldown period, so one slow burst
// does not crater capacity. With no target configured the limit is static —
// the right setting for stream-scoped admission (the Grid Buffer service
// admits at Attach and holds the slot for the stream's life).
//
// A request that cannot be admitted immediately waits in a bounded FIFO
// queue (control ahead of bulk); when the queue is full, or the wait
// exceeds its budget, the request is shed with a RETRY-AFTER-style hint the
// wire layer carries back to the client (see shed.go), where it composes
// with the internal/retry backoff policies.
//
// A nil *Controller admits everything for free, so servers thread admission
// through their dispatch loops unconditionally and the default
// configuration — no controller — is byte-identical to the historical,
// unprotected behaviour.
package admit

import (
	"math"
	"net"
	"strings"
	"sync"
	"time"

	"griddles/internal/obs"
	"griddles/internal/simclock"
)

// Class is a request's priority class.
type Class int

const (
	// Bulk is the default class: data-plane transfers (reads, writes,
	// fetches, puts, buffer streams).
	Bulk Class = iota
	// Control is the latency-sensitive class: name-service lookups, opens,
	// stats, closes. Control requests are dequeued ahead of bulk and a
	// share of the concurrency limit is reserved for them.
	Control
)

// String reports the class label used in metrics and events.
func (c Class) String() string {
	if c == Control {
		return "control"
	}
	return "bulk"
}

// Defaults applied by New for Options fields left zero.
const (
	DefaultMinConcurrent = 1
	DefaultControlShare  = 0.25
	DefaultMaxQueueWait  = time.Second
	DefaultRetryAfter    = 100 * time.Millisecond
	// MaxRetryAfter caps the retry-after hint sent to clients, so a deep
	// queue cannot push them into multi-minute sulks.
	MaxRetryAfter = 2 * time.Second
	// decreaseFactor is the multiplicative cut applied to the limit when a
	// release observes latency over target (outside the cooldown).
	decreaseFactor = 0.75
)

// Options configures a Controller.
type Options struct {
	// Service labels this controller's metrics and events (typically the
	// machine or daemon name).
	Service string
	// MaxConcurrent is the ceiling for the concurrency limit and its
	// initial value. It must be >= 1.
	MaxConcurrent int
	// MinConcurrent is the floor the adaptive limit can never go below
	// (default 1).
	MinConcurrent int
	// TargetLatency enables AIMD adaptation: observed per-request service
	// latency is compared against it on every release. Zero keeps the
	// limit static at MaxConcurrent.
	TargetLatency time.Duration
	// QueueDepth bounds the number of waiting requests per class; a
	// request arriving with its class queue full is shed immediately.
	// Zero disables queueing: anything over the limit sheds.
	QueueDepth int
	// MaxQueueWait bounds how long a queued request waits before it is
	// shed anyway (default 1s). Negative waits forever.
	MaxQueueWait time.Duration
	// ControlShare is the fraction of the current limit reserved for
	// Control requests (default 0.25); bulk requests can never occupy
	// those slots. Negative disables the reservation.
	ControlShare float64
	// MaxPerTenant caps the slots one tenant (client host) may hold at
	// once; 0 disables the cap. Requests over the cap queue (or shed)
	// even when free slots remain, so one thundering tenant cannot
	// monopolize the service.
	MaxPerTenant int
	// MaxConns bounds concurrently accepted connections (the accept
	// queue); 0 disables. Connections over the bound are closed on
	// accept — the cheapest possible shed.
	MaxConns int
	// RetryAfterBase scales the retry-after hint in shed responses
	// (default TargetLatency, or 100ms without one).
	RetryAfterBase time.Duration
	// Clock paces queue waits and latency measurement. Required.
	Clock simclock.Clock
	// Obs receives admit.* metrics and shed decision events; nil discards.
	Obs *obs.Observer
}

// waiter is one queued Acquire.
type waiter struct {
	tenant  string
	class   Class
	ev      *simclock.Event
	granted bool
	start   time.Time // admission time, set at grant
}

// Controller enforces admission for one service instance (or one machine's
// worth of services, when shared so control RPCs and bulk transfers compete
// under one roof). All methods are safe on a nil receiver: everything is
// admitted and releases are no-ops.
type Controller struct {
	opts Options

	mu       sync.Mutex
	limit    float64
	nextDec  time.Time // end of the current multiplicative-decrease cooldown
	inflight int
	bulk     int
	tenants  map[string]int
	conns    int
	queues   [2][]*waiter // indexed by Class

	// metrics (resolved once; nil-observer safe)
	mAdmitted  [2]*obs.Counter
	mShed      map[string]*obs.Counter
	mQueued    [2]*obs.Counter
	gInflight  *obs.Gauge
	gLimit     *obs.Gauge
	gQueue     *obs.Gauge
	hQueueWait *obs.Histogram
	hLatency   *obs.Histogram
}

// New returns a Controller for opts. It panics if MaxConcurrent < 1 or
// Clock is nil — a misconfigured service should fail at startup, loudly.
func New(opts Options) *Controller {
	if opts.MaxConcurrent < 1 {
		panic("admit: MaxConcurrent must be >= 1")
	}
	if opts.Clock == nil {
		panic("admit: Clock is required")
	}
	if opts.MinConcurrent <= 0 {
		opts.MinConcurrent = DefaultMinConcurrent
	}
	if opts.MinConcurrent > opts.MaxConcurrent {
		opts.MinConcurrent = opts.MaxConcurrent
	}
	if opts.ControlShare == 0 {
		opts.ControlShare = DefaultControlShare
	}
	if opts.MaxQueueWait == 0 {
		opts.MaxQueueWait = DefaultMaxQueueWait
	}
	if opts.RetryAfterBase <= 0 {
		if opts.TargetLatency > 0 {
			opts.RetryAfterBase = opts.TargetLatency
		} else {
			opts.RetryAfterBase = DefaultRetryAfter
		}
	}
	c := &Controller{
		opts:    opts,
		limit:   float64(opts.MaxConcurrent),
		tenants: make(map[string]int),
		mShed:   make(map[string]*obs.Counter),
	}
	o, svc := opts.Obs, opts.Service
	for _, cl := range []Class{Bulk, Control} {
		c.mAdmitted[cl] = o.Counter(obs.Key("admit.admitted.total", "service", svc, "class", cl.String()))
		c.mQueued[cl] = o.Counter(obs.Key("admit.queued.total", "service", svc, "class", cl.String()))
	}
	c.gInflight = o.Gauge(obs.Key("admit.inflight", "service", svc))
	c.gLimit = o.Gauge(obs.Key("admit.limit", "service", svc))
	c.gQueue = o.Gauge(obs.Key("admit.queue.depth", "service", svc))
	c.hQueueWait = o.Histogram(obs.Key("admit.queue.wait_ms", "service", svc))
	c.hLatency = o.Histogram(obs.Key("admit.latency_ms", "service", svc))
	c.gLimit.Set(int64(c.limit))
	return c
}

// Limit reports the current adaptive concurrency limit (for tests and
// introspection). A nil controller reports 0.
func (c *Controller) Limit() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	lim, _ := c.capsLocked()
	return lim
}

// Inflight reports the currently admitted request count (0 when nil).
func (c *Controller) Inflight() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// capsLocked computes the integral concurrency limit and the bulk-class
// ceiling under the control reservation.
func (c *Controller) capsLocked() (lim, bulkLim int) {
	lim = int(c.limit)
	if lim < 1 {
		lim = 1
	}
	bulkLim = lim
	if c.opts.ControlShare > 0 {
		reserve := int(math.Ceil(float64(lim) * c.opts.ControlShare))
		if bulkLim = lim - reserve; bulkLim < 1 {
			bulkLim = 1
		}
	}
	return lim, bulkLim
}

// eligibleLocked reports whether a (tenant, class) request fits right now.
func (c *Controller) eligibleLocked(tenant string, class Class) bool {
	lim, bulkLim := c.capsLocked()
	if c.inflight >= lim {
		return false
	}
	if class == Bulk && c.bulk >= bulkLim {
		return false
	}
	if c.opts.MaxPerTenant > 0 && c.tenants[tenant] >= c.opts.MaxPerTenant {
		return false
	}
	return true
}

// admitLocked books the slot.
func (c *Controller) admitLocked(tenant string, class Class) {
	c.inflight++
	if class == Bulk {
		c.bulk++
	}
	c.tenants[tenant]++
	c.mAdmitted[class].Inc()
	c.gInflight.Set(int64(c.inflight))
}

// Acquire admits one request for tenant in class, blocking in the bounded
// queue when the service is at its limit. On admission it returns a release
// function that must be called when the request completes; the release
// feeds the observed service latency into the AIMD limit. On shed it
// returns a *ShedError carrying the retry-after hint.
//
// A nil controller admits everything; the returned release is a no-op.
func (c *Controller) Acquire(tenant string, class Class) (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	c.mu.Lock()
	if c.eligibleLocked(tenant, class) {
		c.admitLocked(tenant, class)
		start := c.opts.Clock.Now()
		c.mu.Unlock()
		return c.releaseFunc(tenant, class, start), nil
	}
	if c.opts.QueueDepth <= 0 || len(c.queues[class]) >= c.opts.QueueDepth {
		defer c.mu.Unlock()
		return nil, c.shedLocked(tenant, class, "queue-full")
	}
	w := &waiter{tenant: tenant, class: class, ev: simclock.NewEvent(c.opts.Clock)}
	c.queues[class] = append(c.queues[class], w)
	c.mQueued[class].Inc()
	c.gQueue.Set(int64(len(c.queues[Bulk]) + len(c.queues[Control])))
	enq := c.opts.Clock.Now()
	c.mu.Unlock()

	w.ev.WaitTimeout(c.opts.MaxQueueWait) // negative MaxQueueWait waits forever

	c.mu.Lock()
	c.hQueueWait.ObserveDuration(c.opts.Clock.Now().Sub(enq))
	if w.granted {
		start := w.start
		c.mu.Unlock()
		return c.releaseFunc(tenant, class, start), nil
	}
	// Timed out in the queue: withdraw and shed.
	q := c.queues[class]
	for i, qi := range q {
		if qi == w {
			c.queues[class] = append(q[:i], q[i+1:]...)
			break
		}
	}
	c.gQueue.Set(int64(len(c.queues[Bulk]) + len(c.queues[Control])))
	defer c.mu.Unlock()
	return nil, c.shedLocked(tenant, class, "queue-timeout")
}

// releaseFunc builds the idempotent release closure for one admission.
func (c *Controller) releaseFunc(tenant string, class Class, start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			lat := c.opts.Clock.Now().Sub(start)
			c.mu.Lock()
			c.hLatency.ObserveDuration(lat)
			c.inflight--
			if class == Bulk {
				c.bulk--
			}
			if c.tenants[tenant]--; c.tenants[tenant] <= 0 {
				delete(c.tenants, tenant)
			}
			c.gInflight.Set(int64(c.inflight))
			c.observeLocked(lat)
			c.grantLocked()
			c.mu.Unlock()
		})
	}
}

// observeLocked is the AIMD update: additive increase at-or-under target,
// multiplicative decrease (with cooldown) over it.
func (c *Controller) observeLocked(lat time.Duration) {
	target := c.opts.TargetLatency
	if target <= 0 {
		return
	}
	if lat > target {
		now := c.opts.Clock.Now()
		if now.Before(c.nextDec) {
			return
		}
		c.limit *= decreaseFactor
		if min := float64(c.opts.MinConcurrent); c.limit < min {
			c.limit = min
		}
		c.nextDec = now.Add(target)
	} else {
		c.limit += 1 / c.limit
		if max := float64(c.opts.MaxConcurrent); c.limit > max {
			c.limit = max
		}
	}
	c.gLimit.Set(int64(c.limit))
}

// grantLocked hands freed capacity to queued waiters: control queue first,
// then bulk, FIFO within each class, skipping tenant-capped waiters so one
// saturated tenant cannot block the queue head for everyone else.
func (c *Controller) grantLocked() {
	for _, class := range []Class{Control, Bulk} {
		q := c.queues[class]
		for i := 0; i < len(q); {
			w := q[i]
			if !c.eligibleLocked(w.tenant, w.class) {
				if c.inflight >= func() int { lim, _ := c.capsLocked(); return lim }() {
					break // no free slots at all; stop scanning
				}
				i++ // class- or tenant-capped: try the next waiter
				continue
			}
			q = append(q[:i], q[i+1:]...)
			c.admitLocked(w.tenant, w.class)
			w.granted = true
			w.start = c.opts.Clock.Now()
			w.ev.Set()
		}
		c.queues[class] = q
	}
	c.gQueue.Set(int64(len(c.queues[Bulk]) + len(c.queues[Control])))
}

// shedLocked records one shed decision and builds its error.
func (c *Controller) shedLocked(tenant string, class Class, reason string) *ShedError {
	key := obs.Key("admit.shed.total", "service", c.opts.Service, "class", class.String(), "reason", reason)
	ctr, ok := c.mShed[key]
	if !ok {
		ctr = c.opts.Obs.Counter(key)
		c.mShed[key] = ctr
	}
	ctr.Inc()
	lim, _ := c.capsLocked()
	queued := len(c.queues[Bulk]) + len(c.queues[Control])
	after := c.opts.RetryAfterBase * time.Duration(1+queued/lim)
	if after > MaxRetryAfter {
		after = MaxRetryAfter
	}
	c.opts.Obs.Emit("admit.decision", c.opts.Service,
		obs.KV("decision", "shed"),
		obs.KV("reason", reason),
		obs.KV("tenant", tenant),
		obs.KV("class", class.String()),
		obs.KV("inflight", c.inflight),
		obs.KV("limit", lim),
		obs.KV("queued", queued),
		obs.KV("retry_after_ms", float64(after)/float64(time.Millisecond)))
	return &ShedError{Service: c.opts.Service, Reason: reason, After: after}
}

// AdmitConn admits one freshly accepted connection against the MaxConns
// bound, returning a release to call when the connection closes and whether
// the connection may proceed. Over the bound it reports false — the caller
// closes the connection immediately, which is the accept-queue shed. A nil
// controller (or MaxConns 0) admits every connection.
func (c *Controller) AdmitConn() (release func(), ok bool) {
	if c == nil || c.opts.MaxConns <= 0 {
		return func() {}, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conns >= c.opts.MaxConns {
		c.shedLocked("", Bulk, "conn-limit")
		return nil, false
	}
	c.conns++
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.conns--
			c.mu.Unlock()
		})
	}, true
}

// TenantOf derives the admission tenant from a connection: the host part of
// its remote address, so all streams of one client machine share a tenant.
func TenantOf(conn net.Conn) string {
	return tenantOfAddr(conn.RemoteAddr().String())
}

func tenantOfAddr(addr string) string {
	if i := strings.LastIndexByte(addr, ':'); i >= 0 {
		return addr[:i]
	}
	return addr
}
