package admit

import (
	"bytes"
	"testing"
	"time"
)

// FuzzDecodeShed: arbitrary bytes never panic the shed decoder; anything it
// accepts is in-range (hint within [0, MaxRetryAfter], reason bounded) and
// survives a re-encode → decode round trip semantically intact.
func FuzzDecodeShed(f *testing.F) {
	f.Add(EncodeShed(&ShedError{Reason: "queue-full", After: 100 * time.Millisecond}))
	f.Add(EncodeShed(&ShedError{Reason: "queue-timeout", After: MaxRetryAfter}))
	f.Add(EncodeShed(&ShedError{Reason: "conn-limit", After: 0}))
	f.Add(EncodeShed(&ShedError{Reason: "", After: -time.Second}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}) // hint -1, no reason
	f.Fuzz(func(t *testing.T, data []byte) {
		shed, err := DecodeShed(data)
		if err != nil {
			return
		}
		if shed.After < 0 || shed.After > MaxRetryAfter {
			t.Fatalf("accepted out-of-range hint %v", shed.After)
		}
		if len(shed.Reason) > MaxShedReason {
			t.Fatalf("accepted oversized reason (%d bytes)", len(shed.Reason))
		}
		again, err := DecodeShed(EncodeShed(shed))
		if err != nil {
			t.Fatalf("re-decode of accepted shed failed: %v", err)
		}
		if again.After != shed.After || again.Reason != shed.Reason {
			t.Fatalf("round trip changed shed: %+v -> %+v", shed, again)
		}
		var buf bytes.Buffer
		if err := WriteShed(&buf, shed); err != nil {
			t.Fatalf("WriteShed: %v", err)
		}
	})
}
