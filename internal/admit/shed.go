package admit

import (
	"fmt"
	"io"
	"time"

	"griddles/internal/wire"
)

// MsgShed is the shared shed-response frame type. Every GriddLeS service
// reserves 254 for it (255 is the per-service error frame), so one codec
// serves all four wire protocols. The payload is:
//
//	i64    retry-after hint, milliseconds (>= 0)
//	string reason ("queue-full", "queue-timeout", "conn-limit")
//
// A shed is not an error about the request — the server never looked at it —
// it is an invitation to come back after the hint. Clients surface it as a
// *ShedError, which internal/retry recognizes as retryable and whose
// RetryAfter method stretches the backoff to honor the hint.
const MsgShed = 254

// MaxShedReason bounds the reason string accepted by DecodeShed, so a
// corrupt frame cannot balloon into a huge allocation.
const MaxShedReason = 256

// ShedError reports that a server refused a request under load, with a
// server-suggested retry delay.
type ShedError struct {
	// Service names the shedding service instance (may be empty on the
	// client when the server did not say).
	Service string
	// Reason is the server's shed cause.
	Reason string
	// After is the server's suggested wait before retrying.
	After time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	if e.Service != "" {
		return fmt.Sprintf("admit: %s shed request (%s): retry after %v", e.Service, e.Reason, e.After)
	}
	return fmt.Sprintf("admit: server shed request (%s): retry after %v", e.Reason, e.After)
}

// RetryAfter reports the server's hint; internal/retry discovers it
// structurally (errors.As on an interface), keeping the two packages
// decoupled.
func (e *ShedError) RetryAfter() time.Duration { return e.After }

// EncodeShed builds the MsgShed payload for err.
func EncodeShed(err *ShedError) []byte {
	after := err.After
	if after < 0 {
		after = 0
	}
	return wire.NewEncoder().I64(after.Milliseconds()).String(err.Reason).Bytes()
}

// DecodeShed parses a MsgShed payload. It tolerates hostile input: a
// negative or absurd hint clamps into [0, MaxRetryAfter], an oversized
// reason truncates, and a truncated payload is an error.
func DecodeShed(payload []byte) (*ShedError, error) {
	d := wire.NewDecoder(payload)
	afterMS := d.I64()
	reason := d.String()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("admit: bad shed payload: %w", err)
	}
	// Clamp in milliseconds, before converting: a huge afterMS would
	// overflow the Duration multiplication and sneak past a post-hoc
	// range check as a negative value.
	if afterMS < 0 {
		afterMS = 0
	} else if max := MaxRetryAfter.Milliseconds(); afterMS > max {
		afterMS = max
	}
	after := time.Duration(afterMS) * time.Millisecond
	if len(reason) > MaxShedReason {
		reason = reason[:MaxShedReason]
	}
	return &ShedError{Reason: reason, After: after}, nil
}

// WriteShed writes err as a MsgShed frame on w, for server dispatch loops.
func WriteShed(w io.Writer, err *ShedError) error {
	return wire.WriteFrame(w, MsgShed, EncodeShed(err))
}
