package admit

import (
	"time"

	"griddles/internal/obs"
	"griddles/internal/simclock"
)

// MaybeController builds the Controller behind the daemons' -admit-* flags:
// nil when limit <= 0 (admission off, the default — the server behaves
// exactly as before), otherwise a controller with the given concurrency
// limit, AIMD latency target (0 keeps the limit static) and per-class
// queue depth, with everything else at defaults.
func MaybeController(service string, limit int, target time.Duration, queue int, clock simclock.Clock, o *obs.Observer) *Controller {
	if limit <= 0 {
		return nil
	}
	return New(Options{
		Service:       service,
		MaxConcurrent: limit,
		TargetLatency: target,
		QueueDepth:    queue,
		Clock:         clock,
		Obs:           o,
	})
}
