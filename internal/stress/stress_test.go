package stress

import (
	"testing"
	"time"
)

// tinyConfig keeps unit tests fast: two levels, a short window, small
// payloads. Physics still apply — x8 of the base rate is well past what
// the Monash<->VPAC link carries.
func tinyConfig(admission bool) Config {
	return Config{
		Seed:      7,
		BaseRate:  4,
		Levels:    []int{1, 8},
		Duration:  8 * time.Second,
		Deadline:  10 * time.Second,
		Payload:   48 << 10,
		Admission: admission,
	}
}

func TestSweepUncontendedLevelCompletesEverything(t *testing.T) {
	rep := Run(tinyConfig(false))
	lv := rep.Levels[0]
	if lv.Offered == 0 {
		t.Fatalf("no arrivals at x1")
	}
	if lv.Completed != lv.Offered || lv.Failed != 0 || lv.Late != 0 {
		t.Fatalf("x1 should be comfortable: %+v", lv)
	}
	if lv.OpenP99MS <= 0 || lv.OpenP99MS > 500 {
		t.Fatalf("x1 open p99 out of range: %.1fms", lv.OpenP99MS)
	}
	if lv.Sheds != 0 {
		t.Fatalf("admission off must never shed, got %d", lv.Sheds)
	}
}

// The arrival schedule is a pure function of the seed and uncontended
// levels reproduce exactly; contended levels wobble with goroutine
// scheduling at equal virtual instants, so they are held to a tight
// relative band instead of bit-equality.
func TestSweepIsReproducibleForFixedSeed(t *testing.T) {
	a := Run(tinyConfig(true))
	b := Run(tinyConfig(true))
	for i := range a.Levels {
		if a.Levels[i].Offered != b.Levels[i].Offered {
			t.Fatalf("arrival schedule diverged at level %d: %d vs %d arrivals",
				i, a.Levels[i].Offered, b.Levels[i].Offered)
		}
	}
	if a.Levels[0] != b.Levels[0] {
		t.Fatalf("uncontended level diverged across identical runs:\n%+v\n%+v",
			a.Levels[0], b.Levels[0])
	}
	top := len(a.Levels) - 1
	ga, gb := a.Levels[top].GoodputWPS, b.Levels[top].GoodputWPS
	if ga == 0 || gb/ga > 1.05 || ga/gb > 1.05 {
		t.Fatalf("contended goodput unstable across identical runs: %.2f vs %.2f", ga, gb)
	}
}

func TestAdmissionShedsAndProtectsOpensUnderOverload(t *testing.T) {
	on := Run(tinyConfig(true))
	top := on.Levels[len(on.Levels)-1]
	if top.Sheds == 0 {
		t.Fatalf("x8 with admission should shed, got %+v", top)
	}
	if top.Completed == 0 {
		t.Fatalf("x8 with admission should still complete work, got %+v", top)
	}
}

func TestGateVerdicts(t *testing.T) {
	mk := func(adm bool, goodputs ...float64) Report {
		r := Report{Admission: adm}
		for i, g := range goodputs {
			r.Levels = append(r.Levels, LevelResult{Level: 1 << i, GoodputWPS: g})
		}
		return r
	}
	if bad := Gate(mk(true, 4, 8, 15, 16), mk(false, 4, 8, 14, 6)); bad != nil {
		t.Fatalf("healthy pair should pass, got %v", bad)
	}
	if bad := Gate(mk(true, 4, 8, 15, 4), mk(false, 4, 8, 14, 1)); len(bad) != 1 {
		t.Fatalf("collapsing on-arm should fail monotonicity once, got %v", bad)
	}
	if bad := Gate(mk(true, 4, 8, 15, 16), mk(false, 4, 8, 14, 15)); len(bad) != 1 {
		t.Fatalf("weak advantage should fail the ratio check, got %v", bad)
	}
	if bad := Gate(mk(false, 1), mk(true, 1)); len(bad) == 0 {
		t.Fatalf("swapped arms must be rejected")
	}
}

func TestBenchMetricsShape(t *testing.T) {
	on := Run(Config{Seed: 3, BaseRate: 2, Levels: []int{1}, Duration: 2 * time.Second,
		Deadline: 10 * time.Second, Payload: 8 << 10, Admission: true})
	off := on
	off.Admission = false
	m := BenchMetrics(on, off)
	for _, name := range []string{"Stress/admit=on/load=x1", "Stress/admit=off/load=x1"} {
		got, ok := m[name]
		if !ok {
			t.Fatalf("missing %s in %v", name, m)
		}
		if got["goodput-wf/s"] <= 0 {
			t.Fatalf("%s has no goodput: %v", name, got)
		}
		if _, ok := got["virt-ms/open-p99"]; !ok {
			t.Fatalf("%s missing open p99: %v", name, got)
		}
	}
}
