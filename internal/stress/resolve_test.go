package stress

import (
	"strings"
	"testing"
	"time"

	"griddles/internal/gns"
)

// tinyResolveConfig keeps the resolve sweep fast in unit tests: two levels,
// a short window, small bursts. Neither level saturates even one shard
// (x8 of 4 bursts/s of 5 resolves is 160 resolves/s against a 1000/s cap),
// so every burst must complete on time.
func tinyResolveConfig(shards int) ResolveConfig {
	return ResolveConfig{
		Seed:     7,
		BaseRate: 4,
		Levels:   []int{1, 8},
		Duration: 4 * time.Second,
		Deadline: 2 * time.Second,
		Burst:    5,
		Keys:     8,
		Shards:   shards,
		Service:  time.Millisecond,
	}
}

func TestResolveSweepUncontendedCompletesEverything(t *testing.T) {
	for _, shards := range []int{1, 4} {
		rep := RunResolve(tinyResolveConfig(shards))
		if rep.Shards != shards || len(rep.Levels) != 2 {
			t.Fatalf("report shape wrong: %+v", rep)
		}
		for _, lv := range rep.Levels {
			if lv.Offered == 0 {
				t.Fatalf("shards=%d x%d: no arrivals", shards, lv.Level)
			}
			if lv.Completed != lv.Offered || lv.Failed != 0 || lv.Late != 0 {
				t.Fatalf("shards=%d x%d should be comfortable: %+v", shards, lv.Level, lv)
			}
			if lv.ResolvesPS <= 0 || lv.GoodputBPS <= 0 {
				t.Fatalf("shards=%d x%d has no throughput: %+v", shards, lv.Level, lv)
			}
			if lv.BurstP99MS <= 0 || lv.BurstP99MS > float64(tinyResolveConfig(shards).Deadline/time.Millisecond) {
				t.Fatalf("shards=%d x%d burst p99 out of range: %.1fms", shards, lv.Level, lv.BurstP99MS)
			}
		}
	}
}

// The arrival schedule and key offsets are pure functions of the seed.
func TestResolveSweepIsReproducibleForFixedSeed(t *testing.T) {
	a := RunResolve(tinyResolveConfig(1))
	b := RunResolve(tinyResolveConfig(1))
	for i := range a.Levels {
		if a.Levels[i].Offered != b.Levels[i].Offered {
			t.Fatalf("arrival schedule diverged at level %d: %d vs %d",
				i, a.Levels[i].Offered, b.Levels[i].Offered)
		}
	}
}

func TestResolveRingSpec(t *testing.T) {
	if got := resolveRing(1); got != "0=gns0:5000" {
		t.Fatalf("1-shard spec: %q", got)
	}
	if got := resolveRing(3); got != "0=gns0:5000;1=gns1:5000;2=gns2:5000" {
		t.Fatalf("3-shard spec: %q", got)
	}
}

func TestResolveKeysBalancedAcrossRing(t *testing.T) {
	cfg := tinyResolveConfig(4)
	sm, err := gns.ParseRing(resolveRing(4))
	if err != nil {
		t.Fatal(err)
	}
	keys := resolveKeys(cfg, sm)
	if len(keys) != cfg.Keys {
		t.Fatalf("want %d keys, got %d", cfg.Keys, len(keys))
	}
	ring := gns.NewRing(sm)
	count := map[uint32]int{}
	for _, k := range keys {
		count[ring.ShardFor("stress", k)]++
	}
	for s, c := range count {
		if c != cfg.Keys/cfg.Shards {
			t.Fatalf("shard %d got %d keys, want %d (dist %v)", s, c, cfg.Keys/cfg.Shards, count)
		}
	}
	// Fewer keys than shards still yields one key per shard.
	cfg.Keys = 2
	if got := resolveKeys(cfg, sm); len(got) != cfg.Shards {
		t.Fatalf("perShard floor: want %d keys, got %d", cfg.Shards, len(got))
	}
}

func TestResolveGateVerdicts(t *testing.T) {
	mk := func(shards int, pts ...[2]float64) ResolveReport {
		r := ResolveReport{Shards: shards}
		for i, p := range pts {
			r.Levels = append(r.Levels, ResolveLevelResult{
				Level: 1 << i, GoodputBPS: p[0], ResolvesPS: p[1],
			})
		}
		return r
	}
	healthy := mk(4, [2]float64{10, 50}, [2]float64{20, 100}, [2]float64{38, 190}, [2]float64{40, 200})
	single := mk(1, [2]float64{10, 50}, [2]float64{18, 50}, [2]float64{18, 50}, [2]float64{16, 50})
	if bad := ResolveGate(healthy, single); bad != nil {
		t.Fatalf("healthy pair should pass, got %v", bad)
	}
	if bad := ResolveGate(single, single); len(bad) != 1 || !strings.Contains(bad[0], "wider") {
		t.Fatalf("equal-width arms must be rejected, got %v", bad)
	}
	if bad := ResolveGate(mk(4, [2]float64{10, 50}), single); len(bad) != 1 || !strings.Contains(bad[0], "mismatched") {
		t.Fatalf("mismatched level counts must be rejected, got %v", bad)
	}
	collapsed := mk(4, [2]float64{40, 200}, [2]float64{5, 200}, [2]float64{5, 200}, [2]float64{5, 200})
	if bad := ResolveGate(collapsed, single); len(bad) != 1 || !strings.Contains(bad[0], "collapsed") {
		t.Fatalf("collapsing sharded arm should fail monotonicity once, got %v", bad)
	}
	weak := mk(4, [2]float64{10, 50}, [2]float64{20, 100}, [2]float64{20, 100}, [2]float64{20, 100})
	if bad := ResolveGate(weak, single); len(bad) != 1 || !strings.Contains(bad[0], "does not beat") {
		t.Fatalf("weak speedup should fail the ratio check, got %v", bad)
	}
	// Goodput collapsing only at levels offered past the ring's capacity is
	// exempt from the monotone check: resolves carry no admission control.
	saturated := mk(4, [2]float64{40, 200}, [2]float64{80, 400}, [2]float64{100, 500}, [2]float64{50, 400})
	saturated.CapacityRPS = 4000
	for i := range saturated.Levels {
		saturated.Levels[i].OfferedRPS = float64(uint(1000) << uint(i)) // x8 offers 8000 > capacity
	}
	if bad := ResolveGate(saturated, single); bad != nil {
		t.Fatalf("past-capacity collapse must be exempt, got %v", bad)
	}
}

func TestResolveBenchMetricsShape(t *testing.T) {
	sharded := ResolveReport{Shards: 4, Levels: []ResolveLevelResult{
		{Level: 1, GoodputBPS: 10, ResolvesPS: 50, BurstP50MS: 5, BurstP99MS: 9, Offered: 80},
	}}
	single := ResolveReport{Shards: 1, Levels: []ResolveLevelResult{
		{Level: 1, GoodputBPS: 10, ResolvesPS: 50, BurstP50MS: 5, BurstP99MS: 9, Offered: 80, Failed: 2, Late: 1},
	}}
	m := ResolveBenchMetrics(sharded, single)
	for _, name := range []string{"StressResolve/shards=4/load=x1", "StressResolve/shards=1/load=x1"} {
		got, ok := m[name]
		if !ok {
			t.Fatalf("missing %s in %v", name, m)
		}
		if got["resolves/s"] <= 0 {
			t.Fatalf("%s has no resolve rate: %v", name, got)
		}
		for _, unit := range []string{"goodput-bursts/s", "virt-ms/burst-p50", "virt-ms/burst-p99", "offered-bursts", "failed-bursts"} {
			if _, ok := got[unit]; !ok {
				t.Fatalf("%s missing %s: %v", name, unit, got)
			}
		}
	}
	if m["StressResolve/shards=1/load=x1"]["failed-bursts"] != 3 {
		t.Fatalf("failed-bursts should fold late in: %v", m)
	}
}
