package stress

import "fmt"

// Gate tolerances. The curves are deterministic for a fixed seed, but the
// thresholds leave room so a reseeded or rescaled run still expresses the
// same physics rather than one exact trajectory.
const (
	// MonotoneTolerance bounds how far goodput may sag when offered load
	// doubles on the admission arm: each level must keep at least
	// (1 - tol) of the previous level's goodput. Rising goodput always
	// passes; what this catches is collapse — goodput falling off a cliff
	// once the service is past saturation.
	MonotoneTolerance = 0.15
	// MinAdvantage is how much better admission-on goodput must be than
	// admission-off at the highest offered load.
	MinAdvantage = 1.2
)

// Gate applies the issue's no-collapse acceptance to a matched pair of
// sweep arms and reports every violation (nil means the gate passes):
//
//   - on the admission arm, goodput must be monotone-ish within
//     MonotoneTolerance as offered load doubles, and
//   - at the highest level, admission-on must beat admission-off by at
//     least MinAdvantage.
func Gate(on, off Report) []string {
	var bad []string
	if !on.Admission || off.Admission {
		bad = append(bad, "gate needs one admission-on and one admission-off arm")
		return bad
	}
	if len(on.Levels) == 0 || len(on.Levels) != len(off.Levels) {
		bad = append(bad, fmt.Sprintf("arms have mismatched levels: on=%d off=%d",
			len(on.Levels), len(off.Levels)))
		return bad
	}
	for i := 1; i < len(on.Levels); i++ {
		prev, cur := on.Levels[i-1], on.Levels[i]
		if floor := prev.GoodputWPS * (1 - MonotoneTolerance); cur.GoodputWPS < floor {
			bad = append(bad, fmt.Sprintf(
				"admission-on goodput collapsed at x%d: %.2f wf/s after %.2f wf/s at x%d (floor %.2f)",
				cur.Level, cur.GoodputWPS, prev.GoodputWPS, prev.Level, floor))
		}
	}
	top := len(on.Levels) - 1
	onTop, offTop := on.Levels[top], off.Levels[top]
	if onTop.GoodputWPS < offTop.GoodputWPS*MinAdvantage {
		bad = append(bad, fmt.Sprintf(
			"admission-on does not beat admission-off at x%d: %.2f vs %.2f wf/s (need %.1fx)",
			onTop.Level, onTop.GoodputWPS, offTop.GoodputWPS, MinAdvantage))
	}
	return bad
}

// BenchMetrics flattens a pair of sweep arms into benchgate's schema
// (benchmark name -> unit -> value) so the curves can be merged into the
// checked-in BENCH_*.json record. Simulated-clock latencies use the
// "virt-" unit prefix benchgate treats as deterministic.
func BenchMetrics(on, off Report) map[string]map[string]float64 {
	out := make(map[string]map[string]float64)
	add := func(rep Report) {
		arm := "off"
		if rep.Admission {
			arm = "on"
		}
		for _, lv := range rep.Levels {
			name := fmt.Sprintf("Stress/admit=%s/load=x%d", arm, lv.Level)
			out[name] = map[string]float64{
				"goodput-wf/s":     lv.GoodputWPS,
				"virt-ms/open-p50": lv.OpenP50MS,
				"virt-ms/open-p99": lv.OpenP99MS,
				"offered-wf":       float64(lv.Offered),
				"failed-wf":        float64(lv.Failed + lv.Late),
				"sheds":            float64(lv.Sheds),
			}
		}
	}
	add(on)
	add(off)
	return out
}
