package stress

import (
	"fmt"
	"math/rand"
	"time"

	"griddles/internal/gns"
	"griddles/internal/retry"
	"griddles/internal/simclock"
	"griddles/internal/simnet"
)

// The resolve-heavy arm: pure control-plane overload. Each workflow is a
// burst of GNS resolves — the metadata stampede a wide fan-out stage fires
// at the name service when a thousand tasks open their inputs at once — with
// no bulk data behind it. The sweep runs the same offered-load ladder twice,
// once against a single GNS shard and once against a four-shard ring, with a
// fixed serialized service time per request modeling the store's critical
// section. One shard saturates at 1/Service resolves per second and then
// collapses under retries; four shards split the key space and carry the
// same ladder with headroom, which is exactly the PR's scale-out claim in
// overload form.

// ResolveConfig parameterizes one resolve-heavy sweep arm.
type ResolveConfig struct {
	// Seed fixes the arrival process, as in Config.
	Seed int64
	// BaseRate is the offered load in bursts/sec at multiplier 1.
	BaseRate float64
	// Levels are the offered-load multipliers.
	Levels []int
	// Duration is the arrival window per level.
	Duration time.Duration
	// Deadline is the per-burst completion budget.
	Deadline time.Duration
	// Burst is the number of resolves per workflow.
	Burst int
	// Keys is the working-set size spread across the ring.
	Keys int
	// Shards is the ring width (1 = the pre-sharding deployment).
	Shards int
	// Service is the serialized per-request service time at each shard
	// server — the M/D/1 bottleneck the sweep stresses.
	Service time.Duration
}

// DefaultResolveConfig is the full resolve-heavy shape. With a 1 ms service
// time one shard caps at 1000 resolves/s = 40 bursts/s and a four-shard
// ring at 160 bursts/s, so the ladder (x1 x2 x4 x8 of 25 bursts/s) is
// healthy for both at x1, saturates the single shard from x2, and at x8
// offers 200 bursts/s — past even the ring's capacity, so the top level
// compares two saturated services rather than a saturated one against an
// underworked one.
func DefaultResolveConfig() ResolveConfig {
	return ResolveConfig{
		Seed:     1,
		BaseRate: 25,
		Levels:   []int{1, 2, 4, 8},
		Duration: 20 * time.Second,
		Deadline: 5 * time.Second,
		Burst:    25,
		Keys:     64,
		Shards:   1,
		Service:  time.Millisecond,
	}
}

// SmokeResolveConfig is the scaled-down CI shape of the same sweep.
func SmokeResolveConfig() ResolveConfig {
	c := DefaultResolveConfig()
	c.Duration = 5 * time.Second
	return c
}

// ResolveLevelResult is one point on a resolve sweep curve.
type ResolveLevelResult struct {
	Level      int     `json:"level"`
	OfferedRPS float64 `json:"offered_rps"` // offered resolve rate at this level
	Offered    int     `json:"offered"`
	Completed  int     `json:"completed"`    // bursts finished within deadline
	Late       int     `json:"late"`         // bursts finished past deadline
	Failed     int     `json:"failed"`       // bursts with a failed resolve
	GoodputBPS float64 `json:"goodput_bps"`  // completed bursts / Duration
	ResolvesPS float64 `json:"resolves_ps"`  // successful resolves / drain time
	BurstP50MS float64 `json:"burst_p50_ms"` // burst latency median
	BurstP99MS float64 `json:"burst_p99_ms"` // burst latency p99
	VirtSecs   float64 `json:"virt_duration_s"`
}

// ResolveReport is one arm (one ring width) of the resolve sweep.
type ResolveReport struct {
	Shards int `json:"shards"`
	// CapacityRPS is the ring's aggregate service capacity,
	// Shards/Service resolves per second.
	CapacityRPS float64              `json:"capacity_rps"`
	Levels      []ResolveLevelResult `json:"levels"`
}

// RunResolve executes the resolve-heavy sweep described by cfg.
func RunResolve(cfg ResolveConfig) ResolveReport {
	rep := ResolveReport{
		Shards:      cfg.Shards,
		CapacityRPS: float64(cfg.Shards) * float64(time.Second) / float64(cfg.Service),
	}
	for _, lvl := range cfg.Levels {
		rep.Levels = append(rep.Levels, runResolveLevel(cfg, lvl))
	}
	return rep
}

// resolveRing builds the ring spec for the configured width.
func resolveRing(shards int) string {
	spec := ""
	for s := 0; s < shards; s++ {
		if s > 0 {
			spec += ";"
		}
		spec += fmt.Sprintf("%d=gns%d:5000", s, s)
	}
	return spec
}

// resolveKeys picks cfg.Keys paths balanced across the ring by construction,
// so the arm measures the sharding mechanism rather than hash luck.
func resolveKeys(cfg ResolveConfig, sm gns.ShardMap) []string {
	ring := gns.NewRing(sm)
	perShard := cfg.Keys / cfg.Shards
	if perShard == 0 {
		perShard = 1
	}
	keys := make([]string, 0, perShard*cfg.Shards)
	fill := make(map[uint32]int)
	for i := 0; len(keys) < cap(keys); i++ {
		path := fmt.Sprintf("/stress/key-%04d", i)
		if s := ring.ShardFor("stress", path); fill[s] < perShard {
			fill[s]++
			keys = append(keys, path)
		}
	}
	return keys
}

// runResolveLevel runs one offered-load level on a fresh virtual network.
func runResolveLevel(cfg ResolveConfig, level int) ResolveLevelResult {
	v := simclock.NewVirtualDefault()
	n := simnet.New(v)
	rate := cfg.BaseRate * float64(level)
	arrivals := poissonArrivals(cfg.Seed+int64(level)<<20, rate, cfg.Duration)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))

	sm, err := gns.ParseRing(resolveRing(cfg.Shards))
	if err != nil {
		panic(fmt.Sprintf("stress: resolve ring: %v", err))
	}
	keys := resolveKeys(cfg, sm)

	var agg levelAgg
	v.Run(func() {
		var seeds []string
		for _, s := range sm.Shards {
			seeds = append(seeds, s.Addrs...)
			for _, addr := range s.Addrs {
				host := addr[:len(addr)-len(":5000")]
				srv := gns.NewServer(gns.NewStore(v), v)
				mu := simclock.NewMutex(v)
				srv.SetRequestCost(func() {
					mu.Lock()
					v.Sleep(cfg.Service)
					mu.Unlock()
				})
				l, err := n.Host(host).Listen(addr)
				if err != nil {
					panic(err)
				}
				defer srv.Close()
				if err := srv.EnableShard(gns.ShardConfig{
					Map: sm, ID: s.ID, Self: addr, Dialer: n.Host(host),
				}); err != nil {
					panic(err)
				}
				v.Go("gns-server-"+addr, func() { srv.Serve(l) })
			}
		}

		admin := gns.NewShardedClient(n.Host("admin"), seeds, v)
		admin.SetRetry(resolvePolicy(v))
		defer admin.Close()
		for _, path := range keys {
			if _, err := admin.Set("stress", path, gns.Mapping{Mode: gns.ModeLocal, LocalPath: path}); err != nil {
				panic(fmt.Sprintf("stress: seeding %s: %v", path, err))
			}
		}

		// Per-burst key offsets drawn up front so the schedule is a pure
		// function of the seed.
		offsets := make([]int, len(arrivals))
		for i := range offsets {
			offsets[i] = rng.Intn(len(keys))
		}

		wg := simclock.NewWaitGroup(v)
		prev := time.Duration(0)
		for i, at := range arrivals {
			v.Sleep(at - prev)
			prev = at
			off := offsets[i]
			wg.Add(1)
			v.Go(fmt.Sprintf("burst-%d", i), func() {
				defer wg.Done()
				runBurst(v, n, seeds, keys, off, cfg, &agg)
			})
		}
		wg.Wait()
	})

	var resolves int
	agg.mu.Lock()
	resolves = (agg.completed + agg.late) * cfg.Burst
	agg.mu.Unlock()
	drain := v.Elapsed().Seconds()
	res := ResolveLevelResult{
		Level:      level,
		OfferedRPS: rate * float64(cfg.Burst),
		Offered:    len(arrivals),
		Completed:  agg.completed,
		Late:       agg.late,
		Failed:     agg.failed,
		GoodputBPS: float64(agg.completed) / cfg.Duration.Seconds(),
		BurstP50MS: percentile(agg.openMS, 0.50),
		BurstP99MS: percentile(agg.openMS, 0.99),
		VirtSecs:   drain,
	}
	if drain > 0 {
		res.ResolvesPS = float64(resolves) / drain
	}
	return res
}

// resolvePolicy is the per-burst retry shape: jitter-free for determinism,
// with a per-attempt timeout well under the burst deadline.
func resolvePolicy(v simclock.Clock) retry.Policy {
	return retry.Policy{
		MaxAttempts:    4,
		BaseDelay:      100 * time.Millisecond,
		MaxDelay:       2 * time.Second,
		Multiplier:     2,
		AttemptTimeout: 2 * time.Second,
		Clock:          v,
	}
}

// runBurst resolves cfg.Burst keys round-robin from off through a fresh
// sharded client, the way a task's open loop would.
func runBurst(v simclock.Clock, n *simnet.Network, seeds, keys []string, off int, cfg ResolveConfig, agg *levelAgg) {
	start := v.Now()
	c := gns.NewShardedClient(n.Host(fmt.Sprintf("burst%d", off%8)), seeds, v)
	c.SetRetry(resolvePolicy(v))
	defer c.Close()
	for i := 0; i < cfg.Burst; i++ {
		if _, err := c.Resolve("stress", keys[(off+i)%len(keys)]); err != nil {
			agg.finish(-1, v.Now().Sub(start), cfg.Deadline, err)
			return
		}
	}
	agg.finish(v.Now().Sub(start), v.Now().Sub(start), cfg.Deadline, nil)
}

// Resolve gate tolerances, in the spirit of the admission gate.
const (
	// ResolveMinSpeedup is how much better the sharded arm's aggregate
	// resolve rate must be than the single-shard arm's at the highest
	// offered load.
	ResolveMinSpeedup = 2.5
)

// ResolveGate applies the scale-out acceptance to a matched pair of resolve
// arms (nil means pass): the sharded arm must not collapse as load doubles
// while the offered rate is within the ring's capacity, and at the top level
// its aggregate resolve rate must beat the single shard's by
// ResolveMinSpeedup. Levels offered more than the ring can serve are exempt
// from the monotone check — resolves carry no admission control, so
// past-saturation goodput collapse is the expected physics (the admission
// sweep is where that cliff gets fixed); what scale-out owes is that the
// ring's cliff sits Shards times further out, which the capacity bound and
// the top-level rate ratio pin together.
func ResolveGate(sharded, single ResolveReport) []string {
	var bad []string
	if sharded.Shards <= single.Shards {
		bad = append(bad, fmt.Sprintf("gate needs a sharded arm wider than the single arm: %d vs %d",
			sharded.Shards, single.Shards))
		return bad
	}
	if len(sharded.Levels) == 0 || len(sharded.Levels) != len(single.Levels) {
		bad = append(bad, fmt.Sprintf("arms have mismatched levels: sharded=%d single=%d",
			len(sharded.Levels), len(single.Levels)))
		return bad
	}
	for i := 1; i < len(sharded.Levels); i++ {
		prev, cur := sharded.Levels[i-1], sharded.Levels[i]
		if sharded.CapacityRPS > 0 && cur.OfferedRPS > sharded.CapacityRPS {
			continue // past ring saturation: collapse is admission's problem
		}
		if floor := prev.GoodputBPS * (1 - MonotoneTolerance); cur.GoodputBPS < floor {
			bad = append(bad, fmt.Sprintf(
				"sharded goodput collapsed at x%d: %.2f bursts/s after %.2f at x%d (floor %.2f)",
				cur.Level, cur.GoodputBPS, prev.GoodputBPS, prev.Level, floor))
		}
	}
	top := len(sharded.Levels) - 1
	sTop, oTop := sharded.Levels[top], single.Levels[top]
	if sTop.ResolvesPS < oTop.ResolvesPS*ResolveMinSpeedup {
		bad = append(bad, fmt.Sprintf(
			"sharded arm does not beat single shard at x%d: %.0f vs %.0f resolves/s (need %.1fx)",
			sTop.Level, sTop.ResolvesPS, oTop.ResolvesPS, ResolveMinSpeedup))
	}
	return bad
}

// ResolveBenchMetrics flattens a pair of resolve arms into benchgate's
// schema for the BENCH_*.json record.
func ResolveBenchMetrics(sharded, single ResolveReport) map[string]map[string]float64 {
	out := make(map[string]map[string]float64)
	add := func(rep ResolveReport) {
		for _, lv := range rep.Levels {
			name := fmt.Sprintf("StressResolve/shards=%d/load=x%d", rep.Shards, lv.Level)
			out[name] = map[string]float64{
				"resolves/s":        lv.ResolvesPS,
				"goodput-bursts/s":  lv.GoodputBPS,
				"virt-ms/burst-p50": lv.BurstP50MS,
				"virt-ms/burst-p99": lv.BurstP99MS,
				"offered-bursts":    float64(lv.Offered),
				"failed-bursts":     float64(lv.Failed + lv.Late),
			}
		}
	}
	add(sharded)
	add(single)
	return out
}
