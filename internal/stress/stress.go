// Package stress drives thousands of simulated workflows against the
// virtual testbed (simclock + simnet + testbed) to pin down how the IO
// services behave under overload. One "workflow" is the paper's file-open
// fast path followed by a bulk stage-in: resolve the logical name at the
// GriddLeS Name Service, open the resolved file on the GridFTP server
// (both control-class RPCs), then fetch the payload over a dedicated bulk
// stream. The harness sweeps offered load over a geometric ladder of
// multipliers, runs each level once with admission control threaded through
// the servers and once without, and reports goodput (workflows completing
// within their deadline per second of the arrival window) and exact
// open-latency percentiles computed from the raw per-workflow samples.
//
// Everything runs on a virtual clock, so a sweep that offers ten thousand
// workflows over minutes of simulated time finishes in seconds of wall
// time. The arrival schedule is a pure function of the seed (a Poisson
// process drawn before any goroutine starts) and retry policies carry no
// jitter, so uncontended levels reproduce exactly; on contended levels
// the Go scheduler still picks among goroutines runnable at the same
// virtual instant, which moves individual outcomes by a fraction of a
// percent — well inside the gate tolerances.
//
// The topology is the paper's Table 1 overload corner: the data service
// (GridFTP + GNS) lives on brecca at VPAC, clients arrive on dione and
// jagan at Monash, and every byte crosses the calibrated 2 ms / 460 KB/s
// Monash<->VPAC link. With 48 KiB payloads one client-host link sustains
// roughly nine to ten workflows per second, so the default ladder (x1 x2
// x4 x8 of 4 wf/s) crosses from comfortable through saturated to twice
// over capacity.
package stress

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"griddles/internal/admit"
	"griddles/internal/gns"
	"griddles/internal/gridftp"
	"griddles/internal/obs"
	"griddles/internal/retry"
	"griddles/internal/simclock"
	"griddles/internal/testbed"
	"griddles/internal/vfs"
)

// Service placement on the testbed.
const (
	serverHost = "brecca"
	gnsAddr    = "brecca:5000"
	ftpAddr    = "brecca:6000"
	dataPath   = "/data/wf.in"
	jobPath    = "/scratch/wf.in"
)

var clientHosts = []string{"dione", "jagan"}

// Config parameterizes one sweep (one arm: admission on or off).
type Config struct {
	// Seed fixes the arrival process. Runs with equal Seed, Admission and
	// shape are reproducible event-for-event.
	Seed int64
	// BaseRate is the offered load in workflows/sec at multiplier 1.
	BaseRate float64
	// Levels are the offered-load multipliers, swept in order. Each level
	// runs on a fresh virtual grid so levels cannot contaminate each other.
	Levels []int
	// Duration is the arrival window per level; workflows keep running
	// (and retrying) past it until they succeed or exhaust their budget.
	Duration time.Duration
	// Deadline is the per-workflow completion budget; a workflow finishing
	// later counts against goodput even if it eventually succeeds.
	Deadline time.Duration
	// Payload is the per-workflow transfer size in bytes.
	Payload int
	// Admission threads admit.Controllers through the GNS and GridFTP
	// servers; false runs the exact pre-admission server paths.
	Admission bool
}

// DefaultConfig is the full stress shape: 4 wf/s base over x1 x2 x4 x8 for
// 84 s of simulated arrivals per level. Summed over the ladder that offers
// an expected (1+2+4+8)*4*84 = 5040 workflows per arm — both arms together
// are the issue's ~10k-workflow run.
func DefaultConfig() Config {
	return Config{
		Seed:     1,
		BaseRate: 4,
		Levels:   []int{1, 2, 4, 8},
		Duration: 84 * time.Second,
		Deadline: 10 * time.Second,
		Payload:  48 << 10,
	}
}

// SmokeConfig is the scaled-down CI shape: the same ladder over a 20 s
// window (~1200 expected workflows per arm). The window is kept long
// enough for the no-admission arm to actually build an overload backlog at
// the top multiplier; much shorter windows end before collapse sets in and
// the gate would be comparing two healthy runs.
func SmokeConfig() Config {
	c := DefaultConfig()
	c.Duration = 20 * time.Second
	return c
}

// LevelResult is one point on a sweep curve.
type LevelResult struct {
	Level      int     `json:"level"`
	OfferedWPS float64 `json:"offered_wps"`
	Offered    int     `json:"offered"`
	Completed  int     `json:"completed"`       // finished OK within deadline
	Late       int     `json:"late"`            // finished OK past deadline
	Failed     int     `json:"failed"`          // error after retry budget
	GoodputWPS float64 `json:"goodput_wps"`     // Completed / Duration
	OpenP50MS  float64 `json:"open_p50_ms"`     // resolve+open latency median
	OpenP99MS  float64 `json:"open_p99_ms"`     // resolve+open latency p99
	Sheds      int64   `json:"sheds"`           // admit.shed.total across services
	Retries    int64   `json:"retries"`         // retry.attempt.total across ops
	LimitEnd   int64   `json:"limit_end"`       // AIMD limit at end of level (0 = off)
	VirtSecs   float64 `json:"virt_duration_s"` // simulated time to drain the level
}

// Report is one arm of the sweep.
type Report struct {
	Admission bool          `json:"admission"`
	Levels    []LevelResult `json:"levels"`
}

// Run executes the sweep described by cfg and returns its curve.
func Run(cfg Config) Report {
	rep := Report{Admission: cfg.Admission}
	for _, lvl := range cfg.Levels {
		rep.Levels = append(rep.Levels, runLevel(cfg, lvl))
	}
	return rep
}

// levelAgg collects per-workflow outcomes. Guarded by a plain mutex: the
// critical sections never block on virtual time.
type levelAgg struct {
	mu        sync.Mutex
	completed int
	late      int
	failed    int
	openMS    []float64
}

func (a *levelAgg) finish(openLat, total time.Duration, deadline time.Duration, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if openLat >= 0 {
		a.openMS = append(a.openMS, float64(openLat)/float64(time.Millisecond))
	}
	switch {
	case err != nil:
		a.failed++
	case total <= deadline:
		a.completed++
	default:
		a.late++
	}
}

// runLevel runs one offered-load level on a fresh virtual grid.
func runLevel(cfg Config, level int) LevelResult {
	v := simclock.NewVirtualDefault()
	o := obs.New(v)
	rate := cfg.BaseRate * float64(level)
	arrivals := poissonArrivals(cfg.Seed+int64(level)<<20, rate, cfg.Duration)

	var agg levelAgg
	var ftpCtl *admit.Controller
	v.Run(func() {
		grid := testbed.DefaultGrid(v)
		server := grid.Machine(serverHost)

		payload := make([]byte, cfg.Payload)
		for i := range payload {
			payload[i] = byte(i)
		}
		if err := vfs.WriteFile(server.RawFS(), dataPath, payload); err != nil {
			panic(fmt.Sprintf("stress: seeding payload: %v", err))
		}

		store := gns.NewStore(v)
		for _, h := range clientHosts {
			store.Set(h, jobPath, gns.Mapping{
				Mode: gns.ModeRemote, RemoteHost: ftpAddr, RemotePath: dataPath,
			})
		}
		gnsSrv := gns.NewServer(store, v)
		ftpSrv := gridftp.NewServer(server.FS(), v)
		if cfg.Admission {
			// GNS handles only tiny control RPCs; a generous static limit
			// just bounds the damage of a stampede. The GridFTP controller
			// is the interesting one: AIMD hunts for the concurrency the
			// shared link can carry while keeping per-transfer service time
			// near target, the reserved control share keeps opens ahead of
			// bulk, and the bounded queue sheds the rest with retry hints.
			gnsSrv.SetAdmission(admit.New(admit.Options{
				Service: "gns", MaxConcurrent: 64, QueueDepth: 64,
				Clock: v, Obs: o,
			}))
			ftpCtl = admit.New(admit.Options{
				Service:       "gridftp",
				MaxConcurrent: 32,
				MinConcurrent: 4,
				TargetLatency: 1500 * time.Millisecond,
				QueueDepth:    32,
				MaxQueueWait:  2 * time.Second,
				Clock:         v,
				Obs:           o,
			})
			ftpSrv.SetAdmission(ftpCtl)
		}
		gnsLn, err := server.Listen(gnsAddr)
		if err != nil {
			panic(err)
		}
		defer gnsLn.Close()
		ftpLn, err := server.Listen(ftpAddr)
		if err != nil {
			panic(err)
		}
		defer ftpLn.Close()
		v.Go("gns-server", func() { gnsSrv.Serve(gnsLn) })
		v.Go("ftp-server", func() { ftpSrv.Serve(ftpLn) })

		wg := simclock.NewWaitGroup(v)
		prev := time.Duration(0)
		for i, at := range arrivals {
			v.Sleep(at - prev)
			prev = at
			host := grid.Machine(clientHosts[i%len(clientHosts)])
			wg.Add(1)
			v.Go(fmt.Sprintf("wf-%d", i), func() {
				defer wg.Done()
				runWorkflow(v, o, host, cfg, &agg)
			})
		}
		wg.Wait()
	})

	res := LevelResult{
		Level:      level,
		OfferedWPS: rate,
		Offered:    len(arrivals),
		Completed:  agg.completed,
		Late:       agg.late,
		Failed:     agg.failed,
		GoodputWPS: float64(agg.completed) / cfg.Duration.Seconds(),
		OpenP50MS:  percentile(agg.openMS, 0.50),
		OpenP99MS:  percentile(agg.openMS, 0.99),
		Sheds:      o.Registry().SumPrefix("admit.shed.total"),
		Retries:    o.Registry().SumPrefix("retry.attempt.total"),
		VirtSecs:   v.Elapsed().Seconds(),
	}
	if ftpCtl != nil {
		res.LimitEnd = int64(ftpCtl.Limit())
	}
	return res
}

// runWorkflow executes one workflow: resolve, open (the measured "file
// open" path), then the bulk fetch. Both clients share one retry shape —
// jitter-free so the run is deterministic, with a per-attempt timeout well
// under the workflow deadline so a stalled control RPC retries instead of
// eating the whole budget.
func runWorkflow(v simclock.Clock, o *obs.Observer, host *testbed.Machine, cfg Config, agg *levelAgg) {
	pol := retry.Policy{
		MaxAttempts:    4,
		BaseDelay:      100 * time.Millisecond,
		MaxDelay:       2 * time.Second,
		Multiplier:     2,
		AttemptTimeout: 2 * time.Second,
		Clock:          v,
		Obs:            o,
		Src:            host.Name(),
	}
	start := v.Now()
	finish := func(openLat time.Duration, err error) {
		total := v.Now().Sub(start)
		outcome := "ok"
		switch {
		case err != nil:
			outcome = "failed"
		case total > cfg.Deadline:
			outcome = "late"
		}
		o.Counter(obs.Key("stress.workflow.total", "outcome", outcome)).Inc()
		if openLat >= 0 {
			o.Histogram("stress.open_ms").ObserveDuration(openLat)
		}
		agg.finish(openLat, total, cfg.Deadline, err)
	}

	nc := gns.NewClient(host, gnsAddr, v)
	nc.SetRetry(pol)
	defer nc.Close()
	m, err := nc.Resolve(host.Name(), jobPath)
	if err != nil {
		finish(-1, err)
		return
	}

	fc := gridftp.NewClient(host, m.RemoteHost, v)
	fc.SetRetry(pol)
	defer fc.Close()
	f, err := fc.Open(m.RemotePath, os.O_RDONLY)
	if err != nil {
		finish(-1, err)
		return
	}
	openLat := v.Now().Sub(start)
	f.Close()

	n, err := fc.Fetch(m.RemotePath, 0, -1, io.Discard)
	if err == nil && n != int64(cfg.Payload) {
		err = fmt.Errorf("stress: short fetch: %d of %d bytes", n, cfg.Payload)
	}
	finish(openLat, err)
}

// poissonArrivals draws the arrival offsets of a Poisson process with the
// given rate over the window. The draw happens before any goroutine is
// spawned, so the schedule is a pure function of the seed.
func poissonArrivals(seed int64, rate float64, window time.Duration) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	var out []time.Duration
	t := 0.0
	for {
		t += rng.ExpFloat64() / rate
		if t >= window.Seconds() {
			return out
		}
		out = append(out, time.Duration(t*float64(time.Second)))
	}
}

// percentile reports the p-quantile (0..1) of samples by nearest-rank on a
// sorted copy; 0 when there are no samples.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	i := int(p*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
