// Package fault turns the simnet fault-injection primitives into scripted,
// replayable chaos schedules. A Schedule is a list of timed Actions applied
// to a simnet.Network by a background goroutine on the simulated clock, so a
// given (schedule, workload) pair is fully deterministic: the same faults
// hit the same bytes on every run. The chaos test matrix builds on this, and
// RandomSchedule derives whole schedules from a seed for property tests.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/simnet"
)

// Kind enumerates the injectable fault types.
type Kind int

const (
	// Reset kills every live connection on the directed link From->To.
	Reset Kind = iota
	// FailAfter arms From->To to reset the connection carrying the
	// Bytes-th byte sent after the action fires.
	FailAfter
	// Blackhole silences From->To for Duration (0 = until healed by a
	// later action); bytes are swallowed, only deadlines notice.
	Blackhole
	// Latency adds Extra of propagation delay on From->To for Duration
	// (0 = permanently).
	Latency
	// Partition cuts both directions between From and To for Duration
	// (0 = until a Heal action).
	Partition
	// Heal removes a partition between From and To.
	Heal
)

// String names the fault kind for event records.
func (k Kind) String() string {
	switch k {
	case Reset:
		return "reset"
	case FailAfter:
		return "fail-after"
	case Blackhole:
		return "blackhole"
	case Latency:
		return "latency"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Action is one timed fault.
type Action struct {
	// At is the simulated instant (relative to Schedule.Start) the fault
	// fires.
	At time.Duration
	// Kind selects the fault; From/To name the directed link (for Partition
	// and Heal the pair is symmetric).
	Kind Kind
	From string
	To   string
	// Bytes arms FailAfter.
	Bytes int64
	// Extra is the added latency for Latency actions.
	Extra time.Duration
	// Duration, when positive, auto-reverts the fault (heal a partition or
	// blackhole, remove extra latency) that long after it fires.
	Duration time.Duration
}

// Schedule applies a list of Actions to a Network on a clock.
type Schedule struct {
	Clock simclock.Clock
	Net   *simnet.Network
	// Obs, if set, receives a "fault.injected" event per applied action (and
	// per auto-revert).
	Obs     *obs.Observer
	Actions []Action
}

// Start launches the schedule in the background: actions fire in At order on
// the schedule's clock. Call inside the virtual clock's Run. The returned
// WaitGroup is done when every action (including auto-reverts) has fired.
func (s *Schedule) Start() *simclock.WaitGroup {
	acts := make([]Action, len(s.Actions))
	copy(acts, s.Actions)
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].At < acts[j].At })
	wg := simclock.NewWaitGroup(s.Clock)
	wg.Add(1)
	start := s.Clock.Now()
	s.Clock.Go("fault-schedule", func() {
		defer wg.Done()
		for _, a := range acts {
			if wait := a.At - s.Clock.Now().Sub(start); wait > 0 {
				s.Clock.Sleep(wait)
			}
			s.apply(a, wg)
		}
	})
	return wg
}

func (s *Schedule) apply(a Action, wg *simclock.WaitGroup) {
	switch a.Kind {
	case Reset:
		s.Net.InjectReset(a.From, a.To)
	case FailAfter:
		s.Net.FailAfter(a.From, a.To, a.Bytes)
	case Blackhole:
		s.Net.SetBlackhole(a.From, a.To, true)
		s.revertAfter(a, wg, func() { s.Net.SetBlackhole(a.From, a.To, false) })
	case Latency:
		s.Net.SetExtraLatency(a.From, a.To, a.Extra)
		s.revertAfter(a, wg, func() { s.Net.SetExtraLatency(a.From, a.To, 0) })
	case Partition:
		s.Net.Partition(a.From, a.To)
		s.revertAfter(a, wg, func() { s.Net.Heal(a.From, a.To) })
	case Heal:
		s.Net.Heal(a.From, a.To)
	}
	s.emit(a.Kind.String(), a)
}

// revertAfter schedules the undo of a timed fault.
func (s *Schedule) revertAfter(a Action, wg *simclock.WaitGroup, undo func()) {
	if a.Duration <= 0 {
		return
	}
	wg.Add(1)
	s.Clock.Go("fault-revert", func() {
		defer wg.Done()
		s.Clock.Sleep(a.Duration)
		undo()
		s.emit(a.Kind.String()+".revert", a)
	})
}

func (s *Schedule) emit(kind string, a Action) {
	if s.Obs == nil {
		return
	}
	s.Obs.Counter(obs.Key("fault.injected.total", "kind", a.Kind.String())).Inc()
	s.Obs.Emit("fault.injected", "fault",
		obs.KV("kind", kind), obs.KV("from", a.From), obs.KV("to", a.To),
		obs.KV("bytes", a.Bytes), obs.KV("extra_ms", float64(a.Extra)/float64(time.Millisecond)),
		obs.KV("duration_ms", float64(a.Duration)/float64(time.Millisecond)))
}

// RandomSchedule derives a fault schedule from seed: n actions over span,
// each picking a random directed pair from hosts and a random recoverable
// fault. Partitions and blackholes always carry a bounded Duration, so a
// random schedule never leaves a link permanently dead — a workload with
// retry enabled should therefore always finish or fail cleanly, which is
// exactly what the property test asserts.
func RandomSchedule(seed int64, hosts []string, n int, span time.Duration) []Action {
	rng := rand.New(rand.NewSource(seed))
	acts := make([]Action, 0, n)
	for i := 0; i < n; i++ {
		from := hosts[rng.Intn(len(hosts))]
		to := hosts[rng.Intn(len(hosts))]
		for to == from {
			to = hosts[rng.Intn(len(hosts))]
		}
		a := Action{
			At:   time.Duration(rng.Int63n(int64(span))),
			From: from,
			To:   to,
		}
		switch rng.Intn(4) {
		case 0:
			a.Kind = Reset
		case 1:
			a.Kind = FailAfter
			a.Bytes = 1 + rng.Int63n(256<<10)
		case 2:
			a.Kind = Blackhole
			a.Duration = time.Duration(1+rng.Int63n(int64(2*time.Second)/int64(time.Millisecond))) * time.Millisecond
		case 3:
			a.Kind = Latency
			a.Extra = time.Duration(1+rng.Int63n(500)) * time.Millisecond
			a.Duration = time.Duration(1+rng.Int63n(int64(5*time.Second)/int64(time.Millisecond))) * time.Millisecond
		}
		acts = append(acts, a)
	}
	return acts
}
