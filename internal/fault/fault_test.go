package fault

import (
	"testing"
	"time"

	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/simnet"
)

func TestScheduleFiresInOrder(t *testing.T) {
	v := simclock.NewVirtualDefault()
	n := simnet.New(v)
	n.SetLinkBoth("a", "b", simnet.LinkSpec{Latency: time.Millisecond})
	o := obs.New(v)
	v.Run(func() {
		s := &Schedule{Clock: v, Net: n, Obs: o, Actions: []Action{
			{At: 50 * time.Millisecond, Kind: Partition, From: "a", To: "b", Duration: 100 * time.Millisecond},
			{At: 10 * time.Millisecond, Kind: FailAfter, From: "a", To: "b", Bytes: 1000},
		}}
		wg := s.Start()
		v.Sleep(20 * time.Millisecond)
		if n.Partitioned("a", "b") {
			t.Error("partition fired early")
		}
		v.Sleep(40 * time.Millisecond)
		if !n.Partitioned("a", "b") {
			t.Error("partition did not fire at its instant")
		}
		wg.Wait()
		if n.Partitioned("a", "b") {
			t.Error("timed partition did not auto-heal")
		}
	})
	var kinds []string
	for _, ev := range o.Events() {
		if ev.Type == "fault.injected" {
			kinds = append(kinds, ev.Attr("kind").(string))
		}
	}
	want := []string{"fail-after", "partition", "partition.revert"}
	if len(kinds) != len(want) {
		t.Fatalf("fault.injected events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("fault.injected events = %v, want %v", kinds, want)
		}
	}
}

func TestRandomScheduleDeterministicAndBounded(t *testing.T) {
	hosts := []string{"a", "b", "c"}
	s1 := RandomSchedule(42, hosts, 20, 10*time.Second)
	s2 := RandomSchedule(42, hosts, 20, 10*time.Second)
	if len(s1) != 20 || len(s2) != 20 {
		t.Fatalf("lengths %d/%d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, s1[i], s2[i])
		}
		if s1[i].From == s1[i].To {
			t.Fatalf("self-link action %+v", s1[i])
		}
		if (s1[i].Kind == Blackhole || s1[i].Kind == Partition) && s1[i].Duration <= 0 {
			t.Fatalf("unbounded outage %+v", s1[i])
		}
	}
	if diff := RandomSchedule(43, hosts, 20, 10*time.Second); len(diff) == 20 {
		same := true
		for i := range diff {
			if diff[i] != s1[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical schedules")
		}
	}
}
