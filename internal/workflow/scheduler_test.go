package workflow

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"griddles/internal/gns"
	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/testbed"
)

// diamondSpec builds source -> {mid1, mid2} -> sink: the smallest workflow
// with genuinely independent branches. Each mid stage computes `work`
// units; payload bytes flow along every edge.
func diamondSpec(work float64, payload int) *Spec {
	write := func(ctx *Ctx, path string) error {
		w, err := ctx.FM.Create(path)
		if err != nil {
			return err
		}
		if _, err := w.Write(make([]byte, payload)); err != nil {
			return err
		}
		return w.Close()
	}
	read := func(ctx *Ctx, path string) error {
		r, err := ctx.FM.Open(path)
		if err != nil {
			return err
		}
		defer r.Close()
		n, err := io.Copy(io.Discard, r)
		if err != nil {
			return err
		}
		if n != int64(payload) {
			return fmt.Errorf("%s: read %d bytes, want %d", path, n, payload)
		}
		return nil
	}
	mid := func(in, out string) func(*Ctx) error {
		return func(ctx *Ctx) error {
			if err := read(ctx, in); err != nil {
				return err
			}
			ctx.Compute(work)
			return write(ctx, out)
		}
	}
	return &Spec{Name: "diamond", Components: []Component{
		{Name: "source", Machine: "brecca", Outputs: []string{"src.dat"}, WorkHint: 5,
			Run: func(ctx *Ctx) error { ctx.Compute(5); return write(ctx, "src.dat") }},
		{Name: "mid1", Machine: "dione", Inputs: []string{"src.dat"}, Outputs: []string{"m1.dat"}, WorkHint: work,
			Run: mid("src.dat", "m1.dat")},
		{Name: "mid2", Machine: "freak", Inputs: []string{"src.dat"}, Outputs: []string{"m2.dat"}, WorkHint: work,
			Run: mid("src.dat", "m2.dat")},
		{Name: "sink", Machine: "brecca", Inputs: []string{"m1.dat", "m2.dat"}, WorkHint: 5,
			Run: func(ctx *Ctx) error {
				for _, in := range []string{"m1.dat", "m2.dat"} {
					if err := read(ctx, in); err != nil {
						return err
					}
				}
				ctx.Compute(5)
				return nil
			}},
	}}
}

// runSpec executes spec under CouplingSequential on a fresh grid, applying
// mutate to the runner first.
func runSpec(t *testing.T, spec *Spec, mutate func(*Runner)) *Report {
	t.Helper()
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	runner := &Runner{Grid: grid, GNS: gns.NewStore(v)}
	if mutate != nil {
		mutate(runner)
	}
	var report *Report
	v.Run(func() {
		if err := StartServices(v, grid); err != nil {
			t.Fatal(err)
		}
		var err error
		report, err = runner.Run(spec, CouplingSequential)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	return report
}

func overlaps(a, b Timing) bool { return a.Start < b.Finish && b.Start < a.Finish }

func TestDAGRunsIndependentBranchesConcurrently(t *testing.T) {
	rep := runSpec(t, diamondSpec(30, 64<<10), nil)
	m1, _ := rep.Timing("mid1")
	m2, _ := rep.Timing("mid2")
	if !overlaps(m1, m2) {
		t.Errorf("independent branches did not overlap:\n%s", rep)
	}
	serial := runSpec(t, diamondSpec(30, 64<<10), func(r *Runner) { r.Serial = true })
	if rep.Total >= serial.Total {
		t.Errorf("DAG (%v) not faster than serial (%v)", rep.Total, serial.Total)
	}
	// Dependencies still hold.
	src, _ := rep.Timing("source")
	sink, _ := rep.Timing("sink")
	if m1.Start < src.Finish || m2.Start < src.Finish || sink.Start < m1.Finish || sink.Start < m2.Finish {
		t.Errorf("dependency violated:\n%s", rep)
	}
}

func TestDAGIsDeterministic(t *testing.T) {
	a := runSpec(t, diamondSpec(30, 64<<10), nil)
	b := runSpec(t, diamondSpec(30, 64<<10), nil)
	if a.Total != b.Total {
		t.Errorf("two identical DAG runs differ: %v vs %v", a.Total, b.Total)
	}
}

func TestSerialExecutorMatchesDAGOnChains(t *testing.T) {
	// A pure chain has no branch parallelism: the DAG scheduler at
	// MaxPerMachine=1 must reproduce the serial executor's timing exactly.
	chain := func() *Spec { return pipeSpec([3]string{"brecca", "dione", "freak"}, 30, 30, 4096) }
	dag := runSpec(t, chain(), nil)
	serial := runSpec(t, chain(), func(r *Runner) { r.Serial = true })
	if dag.Total != serial.Total {
		t.Errorf("chain timing differs: DAG %v vs serial %v", dag.Total, serial.Total)
	}
}

// sleepPair is two independent stages on one machine, each sleeping d.
func sleepPair(d time.Duration) *Spec {
	mk := func() func(*Ctx) error {
		return func(ctx *Ctx) error {
			ctx.Clock.Sleep(d)
			return nil
		}
	}
	return &Spec{Name: "pair", Components: []Component{
		{Name: "p1", Machine: "brecca", Run: mk()},
		{Name: "p2", Machine: "brecca", Run: mk()},
	}}
}

func TestAdmissionControlDefaultsToOnePerMachine(t *testing.T) {
	rep := runSpec(t, sleepPair(10*time.Second), nil)
	p1, _ := rep.Timing("p1")
	p2, _ := rep.Timing("p2")
	if overlaps(p1, p2) {
		t.Errorf("co-located stages overlapped at MaxPerMachine=1:\n%s", rep)
	}
	if rep.Total < 20*time.Second {
		t.Errorf("total %v, want >= 20s (serialized sleeps)", rep.Total)
	}
}

func TestAdmissionControlRaisedCap(t *testing.T) {
	rep := runSpec(t, sleepPair(10*time.Second), func(r *Runner) { r.MaxPerMachine = 2 })
	p1, _ := rep.Timing("p1")
	p2, _ := rep.Timing("p2")
	if !overlaps(p1, p2) {
		t.Errorf("co-located stages did not overlap at MaxPerMachine=2:\n%s", rep)
	}
	if rep.Total > 11*time.Second {
		t.Errorf("total %v, want ~10s (concurrent sleeps)", rep.Total)
	}
}

func TestDAGFailureDrainsInFlightAndStopsDispatch(t *testing.T) {
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	runner := &Runner{Grid: grid, GNS: gns.NewStore(v)}
	var ranMu sync.Mutex
	ran := map[string]bool{}
	note := func(name string) {
		ranMu.Lock()
		ran[name] = true
		ranMu.Unlock()
	}
	spec := &Spec{Name: "drain", Components: []Component{
		{Name: "bad", Machine: "brecca", Outputs: []string{"a.out"}, Run: func(ctx *Ctx) error {
			note("bad")
			return fmt.Errorf("bad failed")
		}},
		{Name: "slow", Machine: "dione", Outputs: []string{"b.out"}, Run: func(ctx *Ctx) error {
			note("slow")
			ctx.Clock.Sleep(10 * time.Second)
			return nil
		}},
		{Name: "after", Machine: "brecca", Inputs: []string{"a.out", "b.out"}, Run: func(ctx *Ctx) error {
			note("after")
			return nil
		}},
	}}
	var runErr error
	v.Run(func() {
		if err := StartServices(v, grid); err != nil {
			t.Fatal(err)
		}
		_, runErr = runner.Run(spec, CouplingSequential)
	})
	if runErr == nil || !strings.Contains(runErr.Error(), "bad failed") {
		t.Fatalf("err = %v, want the failing component's error", runErr)
	}
	if !ran["bad"] || !ran["slow"] {
		t.Errorf("independent roots should both have been dispatched: %v", ran)
	}
	if ran["after"] {
		t.Error("downstream stage dispatched after a failure")
	}
}

func TestCriticalPaths(t *testing.T) {
	spec := &Spec{Name: "cp", Components: []Component{
		{Name: "a", WorkHint: 1, Outputs: []string{"a.out"}},
		{Name: "b", WorkHint: 2, Inputs: []string{"a.out"}, Outputs: []string{"b.out"}},
		{Name: "c", WorkHint: 10, Outputs: []string{"c.out"}},
		{Name: "d", WorkHint: 3, Inputs: []string{"b.out", "c.out"}},
	}}
	cp := criticalPaths(spec)
	want := []float64{6, 5, 13, 3}
	for i, w := range want {
		if cp[i] != w {
			t.Errorf("cp[%s] = %v, want %v", spec.Components[i].Name, cp[i], w)
		}
	}
}

func TestSchedulerEmitsDispatchMetrics(t *testing.T) {
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	o := obs.New(v)
	runner := &Runner{Grid: grid, GNS: gns.NewStore(v), Obs: o}
	v.Run(func() {
		if err := StartServices(v, grid); err != nil {
			t.Fatal(err)
		}
		if _, err := runner.Run(diamondSpec(5, 1024), CouplingSequential); err != nil {
			t.Fatal(err)
		}
	})
	snap := o.Snapshot()
	if n := snap.Counters["wf.sched.dispatch.total"]; n != 4 {
		t.Errorf("wf.sched.dispatch.total = %d, want 4", n)
	}
	if snap.Counters["wf.sched.fail.total"] != 0 {
		t.Error("spurious wf.sched.fail.total")
	}
}
