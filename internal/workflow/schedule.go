package workflow

import (
	"fmt"
	"sort"

	"griddles/internal/testbed"
)

// AutoAssign fills in the Machine field of components that have none,
// honouring the scheduling constraint the paper's conclusion calls out:
// "if file copies are performed the computations need to be run
// sequentially. On the other hand, if buffers are used then they need to
// run at the same time."
//
//   - Under CouplingSequential, stages never overlap, so every unassigned
//     component goes to the fastest machine (spreading them would only add
//     copies).
//   - Under CouplingFiles/CouplingBuffers, components are co-scheduled:
//     they are spread across machines by longest-processing-time-first
//     greedy balancing of WorkHint/speed, so the slowest machine does the
//     least work.
//
// Components with an explicit Machine are left alone (pinned stages, e.g.
// one tied to a local dataset).
func AutoAssign(spec *Spec, grid *testbed.Grid, coupling Coupling) error {
	type mach struct {
		name  string
		speed float64
		load  float64 // assigned work / speed
	}
	var machines []*mach
	for name, m := range grid.Machines() {
		machines = append(machines, &mach{name: name, speed: m.Spec().SpeedFactor})
	}
	if len(machines) == 0 {
		return fmt.Errorf("workflow: no machines to assign onto")
	}
	sort.Slice(machines, func(i, j int) bool {
		if machines[i].speed != machines[j].speed {
			return machines[i].speed > machines[j].speed
		}
		return machines[i].name < machines[j].name
	})

	// Pinned components pre-load their machines.
	byName := make(map[string]*mach, len(machines))
	for _, m := range machines {
		byName[m.name] = m
	}
	var unassigned []int
	for i, c := range spec.Components {
		if c.Machine != "" {
			if m, ok := byName[c.Machine]; ok {
				m.load += workHint(c) / m.speed
			} else {
				return fmt.Errorf("workflow: component %s pinned to unknown machine %q", c.Name, c.Machine)
			}
			continue
		}
		unassigned = append(unassigned, i)
	}

	if coupling == CouplingSequential {
		fastest := machines[0].name
		for _, i := range unassigned {
			spec.Components[i].Machine = fastest
		}
		return nil
	}

	// Split the components into heavy stages (LPT-balanced across machines)
	// and light glue stages (co-located with their heaviest dataflow
	// neighbour so the coupling streams stay off the WAN — the pattern the
	// paper's own experiment-3 placement follows, where the tiny
	// transform/reduce stages ride next to the big solvers).
	maxHint := 0.0
	for _, i := range unassigned {
		if w := workHint(spec.Components[i]); w > maxHint {
			maxHint = w
		}
	}
	var heavy, light []int
	for _, i := range unassigned {
		if workHint(spec.Components[i]) >= 0.1*maxHint {
			heavy = append(heavy, i)
		} else {
			light = append(light, i)
		}
	}

	// Critical-path greedy: the stage heading the longest remaining
	// dependency chain is placed first onto the machine that would finish
	// it earliest, so the DAG's spine lands on the fastest boxes and the
	// short side branches fill in around it. On dependency-free specs the
	// critical path of a stage is just its own work, which degenerates to
	// the classic LPT ordering.
	cp := criticalPaths(spec)
	sort.SliceStable(heavy, func(a, b int) bool {
		if cp[heavy[a]] != cp[heavy[b]] {
			return cp[heavy[a]] > cp[heavy[b]]
		}
		return workHint(spec.Components[heavy[a]]) > workHint(spec.Components[heavy[b]])
	})
	for _, i := range heavy {
		w := workHint(spec.Components[i])
		best := machines[0]
		bestFinish := best.load + w/best.speed
		for _, m := range machines[1:] {
			if finish := m.load + w/m.speed; finish < bestFinish {
				best, bestFinish = m, finish
			}
		}
		best.load = bestFinish
		spec.Components[i].Machine = best.name
	}

	// Light stages follow their data.
	prod, err := spec.producers()
	if err != nil {
		return err
	}
	cons := spec.consumers()
	for _, i := range light {
		c := spec.Components[i]
		bestHint, bestMachine := -1.0, ""
		consider := func(j int) {
			n := spec.Components[j]
			if n.Machine == "" {
				return
			}
			if h := workHint(n); h > bestHint {
				bestHint, bestMachine = h, n.Machine
			}
		}
		for _, in := range c.Inputs {
			if p, ok := prod[in]; ok {
				consider(p)
			}
		}
		for _, out := range c.Outputs {
			for _, ci := range cons[out] {
				consider(ci)
			}
		}
		if bestMachine == "" {
			bestMachine = machines[0].name // no placed neighbours: fastest box
		}
		spec.Components[i].Machine = bestMachine
		m := byName[bestMachine]
		m.load += workHint(c) / m.speed
	}
	return nil
}

func workHint(c Component) float64 {
	if c.WorkHint > 0 {
		return c.WorkHint
	}
	return 1
}
