package workflow

import (
	"sort"
	"sync"

	"griddles/internal/obs"
	"griddles/internal/simclock"
)

// This file is the ready-set DAG scheduler behind CouplingSequential.
//
// The paper's conclusion says file-copied workflows "need to be run
// sequentially" — but that constraint only holds along dependency edges: a
// stage must not start before its producers have closed their outputs.
// Independent DAG branches carry no such constraint, so the scheduler keeps
// a ready set (stages whose producers have all finished) and dispatches
// from it the moment a stage becomes runnable, subject to per-machine
// admission control:
//
//	pending --(all producers done)--> ready --(machine slot free)--> running --> done
//
// Runner.MaxPerMachine bounds how many stages may run concurrently on one
// machine (default 1, the paper's one-job-per-box regime — co-located
// stages still never overlap, so the Table 3/5 chains reproduce
// byte-identically). Ready stages are dispatched longest-critical-path
// first with the component index as a deterministic tie-break, so the
// DAG's spine starts as early as possible and a pure chain dispatches in
// exactly the historical topological order.
//
// Failure semantics match the historical serial executor: after a stage
// fails, no new stage is dispatched; in-flight stages drain and the error
// of the lowest-indexed failed component is returned.

// Stage lifecycle states.
const (
	stPending = iota
	stReady
	stRunning
	stDone
)

// dagRun is one workflow execution's scheduler state. The dispatcher loop
// runs on the caller's goroutine; completions arrive from the per-stage
// goroutines under mu.
type dagRun struct {
	runner *Runner
	spec   *Spec
	clock  simclock.Clock
	runOne func(int) error
	maxPer int

	mu      sync.Mutex
	cond    simclock.Cond
	state   []int
	indeg   []int
	succ    [][]int
	prio    []float64 // critical-path length (work units to any sink)
	running map[string]int
	done    int
	errs    []error
	failed  bool
}

// runDAG executes spec's components under the ready-set scheduler. runOne
// is the Runner's per-stage body; each dispatched stage gets its own
// clock-registered goroutine.
func (r *Runner) runDAG(spec *Spec, runOne func(int) error) error {
	if _, err := spec.TopoOrder(); err != nil {
		return err // duplicate producer or dependency cycle
	}
	prod, _ := spec.producers()
	n := len(spec.Components)
	d := &dagRun{
		runner:  r,
		spec:    spec,
		clock:   r.Grid.Clock(),
		runOne:  runOne,
		maxPer:  r.maxPerMachine(),
		state:   make([]int, n),
		indeg:   make([]int, n),
		succ:    make([][]int, n),
		prio:    criticalPaths(spec),
		running: make(map[string]int),
		errs:    make([]error, n),
	}
	d.cond = d.clock.NewCond(&d.mu)
	for i, c := range spec.Components {
		for _, in := range c.Inputs {
			if p, ok := prod[in]; ok && p != i {
				d.succ[p] = append(d.succ[p], i)
				d.indeg[i]++
			}
		}
	}
	for i := 0; i < n; i++ {
		if d.indeg[i] == 0 {
			d.state[i] = stReady
		}
	}
	d.loop()
	for _, err := range d.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// maxPerMachine reports the per-machine admission bound (0 means 1, the
// paper's one-job-per-box semantics).
func (r *Runner) maxPerMachine() int {
	if r.MaxPerMachine > 0 {
		return r.MaxPerMachine
	}
	return 1
}

// criticalPaths computes, per component, the longest WorkHint-weighted path
// from it to any sink (inclusive of its own work). The scheduler dispatches
// ready stages in decreasing critical-path order so the DAG's spine is
// never kept waiting behind a short side branch; AutoAssign uses the same
// priority to land the spine on the fastest boxes.
func criticalPaths(spec *Spec) []float64 {
	order, err := spec.TopoOrder()
	if err != nil {
		return make([]float64, len(spec.Components)) // caller reports the cycle
	}
	prod, _ := spec.producers()
	cons := spec.consumers()
	cp := make([]float64, len(spec.Components))
	for k := len(order) - 1; k >= 0; k-- {
		i := order[k]
		longest := 0.0
		for _, out := range spec.Components[i].Outputs {
			if prod[out] != i {
				continue
			}
			for _, j := range cons[out] {
				if j != i && cp[j] > longest {
					longest = cp[j]
				}
			}
		}
		cp[i] = workHint(spec.Components[i]) + longest
	}
	return cp
}

// loop dispatches until every stage is done, or a failure has drained the
// in-flight stages. Holding mu across dispatchLocked is safe: the stage
// body runs on its own goroutine and only takes mu at completion.
func (d *dagRun) loop() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.done == len(d.spec.Components) {
			return
		}
		if d.failed {
			if d.inflightLocked() == 0 {
				return
			}
		} else {
			for _, i := range d.runnableLocked() {
				if d.running[d.spec.Components[i].Machine] < d.maxPer {
					d.dispatchLocked(i)
				}
			}
		}
		d.cond.Wait()
	}
}

// inflightLocked counts running stages.
func (d *dagRun) inflightLocked() int {
	n := 0
	for _, st := range d.state {
		if st == stRunning {
			n++
		}
	}
	return n
}

// runnableLocked returns the ready stages in dispatch order: longest
// critical path first, component index as the deterministic tie-break.
func (d *dagRun) runnableLocked() []int {
	var ready []int
	for i, st := range d.state {
		if st == stReady {
			ready = append(ready, i)
		}
	}
	sort.Slice(ready, func(a, b int) bool {
		if d.prio[ready[a]] != d.prio[ready[b]] {
			return d.prio[ready[a]] > d.prio[ready[b]]
		}
		return ready[a] < ready[b]
	})
	return ready
}

// dispatchLocked moves stage i to running and launches its goroutine.
func (d *dagRun) dispatchLocked(i int) {
	comp := d.spec.Components[i]
	d.state[i] = stRunning
	d.running[comp.Machine]++
	r := d.runner
	r.Obs.Counter("wf.sched.dispatch.total").Inc()
	r.Obs.Gauge("wf.sched.running").Set(int64(d.inflightLocked()))
	r.Obs.Emit("wf.sched.dispatch", comp.Machine,
		obs.KV("workflow", d.spec.Name),
		obs.KV("component", comp.Name),
		obs.KV("priority", d.prio[i]),
		obs.KV("running_on_machine", d.running[comp.Machine]))
	d.clock.Go("wf-"+comp.Name, func() {
		err := d.runOne(i)
		d.mu.Lock()
		defer d.mu.Unlock()
		d.state[i] = stDone
		d.done++
		d.running[comp.Machine]--
		d.errs[i] = err
		if err != nil {
			d.failed = true
			r.Obs.Counter("wf.sched.fail.total").Inc()
			r.Obs.Emit("wf.sched.fail", comp.Machine,
				obs.KV("workflow", d.spec.Name),
				obs.KV("component", comp.Name))
		} else {
			for _, j := range d.succ[i] {
				d.indeg[j]--
				if d.indeg[j] == 0 && d.state[j] == stPending {
					d.state[j] = stReady
				}
			}
		}
		r.Obs.Gauge("wf.sched.running").Set(int64(d.inflightLocked()))
		d.cond.Broadcast()
	})
}
