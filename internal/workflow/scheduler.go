package workflow

import (
	"errors"
	"sort"
	"sync"
	"time"

	"griddles/internal/gns"
	"griddles/internal/obs"
	"griddles/internal/simclock"
)

// This file is the ready-set DAG scheduler behind CouplingSequential.
//
// The paper's conclusion says file-copied workflows "need to be run
// sequentially" — but that constraint only holds along dependency edges: a
// stage must not start before its producers have closed their outputs.
// Independent DAG branches carry no such constraint, so the scheduler keeps
// a ready set (stages whose producers have all finished) and dispatches
// from it the moment a stage becomes runnable, subject to per-machine
// admission control:
//
//	pending --(all producers done)--> ready --(machine slot free)--> running --> done
//
// Runner.MaxPerMachine bounds how many stages may run concurrently on one
// machine (default 1, the paper's one-job-per-box regime — co-located
// stages still never overlap, so the Table 3/5 chains reproduce
// byte-identically). Ready stages are dispatched longest-critical-path
// first with the component index as a deterministic tie-break, so the
// DAG's spine starts as early as possible and a pure chain dispatches in
// exactly the historical topological order.
//
// Failure semantics match the historical serial executor: after a stage
// fails, no new stage is dispatched; in-flight stages drain and the error
// of the lowest-indexed failed component is returned.
//
// Two opt-in layers ride on the scheduler, both off by default:
//
//   - Runner.Journal appends each transition to a durable log
//     (journal.go) so a crashed coordinator can be resumed (recover.go).
//   - Runner.Speculate launches a second attempt of a straggling stage on
//     an idle machine (speculation.go). Both attempts of a stage race to a
//     first-writer-wins GNS commit; the loser's partial outputs are
//     discarded and its FM is interrupted so it stops at its next IO.

// Stage lifecycle states.
const (
	stPending = iota
	stReady
	stRunning
	stDone
)

// specSuffix namespaces every file a speculative attempt writes or stages,
// so speculation artifacts can never collide with the primary attempt's
// plain-named files on any machine.
const specSuffix = ".wfspec"

// ErrSpeculationLost is the error a losing attempt's IO returns after the
// sibling attempt committed the stage; the scheduler treats it as a
// discarded attempt, never as a stage failure.
var ErrSpeculationLost = errors.New("workflow: attempt lost the speculation race")

// attempt is one execution of a stage. A stage normally has exactly one
// (n=1, on the component's configured machine); speculation adds a second
// (n=2, on an idle machine). The interrupt hook is wired into the
// attempt's File Multiplexer so a lost attempt stops at its next open.
type attempt struct {
	stage   int
	n       int // 1 = primary, 2 = speculative
	machine string

	mu    sync.Mutex
	lost  bool
	saved []savedEntry // GNS entries to restore if a speculative attempt loses
}

// savedEntry is one GNS entry as it was before a speculative attempt's
// pre-staging overwrote it.
type savedEntry struct {
	machine string
	path    string
	mapping gns.Mapping
	had     bool
}

// interrupt implements core.Config.Interrupt for the attempt's FM.
func (a *attempt) interrupt() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lost {
		return ErrSpeculationLost
	}
	return nil
}

func (a *attempt) markLost() {
	a.mu.Lock()
	a.lost = true
	a.mu.Unlock()
}

// dagRun is one workflow execution's scheduler state. The dispatcher loop
// runs on the caller's goroutine; completions arrive from the per-stage
// goroutines under mu.
type dagRun struct {
	runner  *Runner
	spec    *Spec
	clock   simclock.Clock
	exec    func(int, *attempt) (Timing, error)
	record  func(int, Timing)
	maxPer  int
	journal *Journal
	kill    *KillSwitch
	prod    map[string]int
	cons    map[string][]int

	mu       sync.Mutex
	cond     simclock.Cond
	state    []int
	indeg    []int
	succ     [][]int
	prio     []float64 // critical-path length (work units to any sink)
	running  map[string]int
	done     int
	errs     []error
	failed   bool
	finished bool

	// Speculation bookkeeping.
	attempts  []int            // attempts launched per stage (0, 1, or 2)
	home      []string         // machine holding each done stage's outputs
	startAt   []time.Time      // dispatch time per running stage
	primAtt   map[int]*attempt // in-flight primary attempts
	specAtt   map[int]*attempt // in-flight speculative attempts
	durations []time.Duration  // completed stage durations (straggler baseline)
}

// runDAG executes spec's components under the ready-set scheduler. exec is
// the Runner's per-attempt body; each dispatched attempt gets its own
// clock-registered goroutine. A non-nil img seeds the run with a resumed
// journal's state: provably-done stages are marked done without
// re-dispatch, everything else is recomputed from the dependency edges.
func (r *Runner) runDAG(spec *Spec, exec func(int, *attempt) (Timing, error), record func(int, Timing), img *RunImage) error {
	if _, err := spec.TopoOrder(); err != nil {
		return err // duplicate producer or dependency cycle
	}
	prod, _ := spec.producers()
	n := len(spec.Components)
	d := &dagRun{
		runner:   r,
		spec:     spec,
		clock:    r.Grid.Clock(),
		exec:     exec,
		record:   record,
		maxPer:   r.maxPerMachine(),
		journal:  r.Journal,
		kill:     r.Kill,
		prod:     prod,
		cons:     spec.consumers(),
		state:    make([]int, n),
		indeg:    make([]int, n),
		succ:     make([][]int, n),
		prio:     criticalPaths(spec),
		running:  make(map[string]int),
		errs:     make([]error, n),
		attempts: make([]int, n),
		home:     make([]string, n),
		startAt:  make([]time.Time, n),
		primAtt:  make(map[int]*attempt),
		specAtt:  make(map[int]*attempt),
	}
	d.cond = d.clock.NewCond(&d.mu)
	for i, c := range spec.Components {
		d.home[i] = c.Machine
		for _, in := range c.Inputs {
			if p, ok := prod[in]; ok && p != i {
				d.succ[p] = append(d.succ[p], i)
				d.indeg[i]++
			}
		}
	}
	if img != nil {
		// Seed from the replayed journal: done stages stay done — their
		// outputs exist and are re-resolved through the GNS, never
		// recomputed. Running/ready/failed stages fall back to pending and
		// are re-derived from the edges below; re-dispatch is idempotent
		// because stage-out creates and copy-in truncates.
		for i, st := range img.States {
			if st != StageDone {
				continue
			}
			d.state[i] = stDone
			d.done++
			if h, ok := img.Home[i]; ok {
				d.home[i] = h
			}
			for _, j := range d.succ[i] {
				d.indeg[j]--
			}
		}
	}
	for i := 0; i < n; i++ {
		if d.state[i] == stPending && d.indeg[i] == 0 {
			d.state[i] = stReady
			d.journalState(i, StageReady, 0)
		}
	}
	if d.journal != nil && img != nil {
		// Anchor the resumed session: the journal's tail snapshot now
		// reflects exactly what this coordinator believes.
		d.journal.Snapshot(d.imageLocked())
	}
	if r.Speculate {
		d.clock.Go("wf-spec-monitor", d.monitor)
	}
	d.loop()
	if d.kill.Killed() {
		return ErrCoordinatorKilled
	}
	for _, err := range d.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// maxPerMachine reports the per-machine admission bound (0 means 1, the
// paper's one-job-per-box semantics).
func (r *Runner) maxPerMachine() int {
	if r.MaxPerMachine > 0 {
		return r.MaxPerMachine
	}
	return 1
}

// criticalPaths computes, per component, the longest WorkHint-weighted path
// from it to any sink (inclusive of its own work). The scheduler dispatches
// ready stages in decreasing critical-path order so the DAG's spine is
// never kept waiting behind a short side branch; AutoAssign uses the same
// priority to land the spine on the fastest boxes.
func criticalPaths(spec *Spec) []float64 {
	order, err := spec.TopoOrder()
	if err != nil {
		return make([]float64, len(spec.Components)) // caller reports the cycle
	}
	prod, _ := spec.producers()
	cons := spec.consumers()
	cp := make([]float64, len(spec.Components))
	for k := len(order) - 1; k >= 0; k-- {
		i := order[k]
		longest := 0.0
		for _, out := range spec.Components[i].Outputs {
			if prod[out] != i {
				continue
			}
			for _, j := range cons[out] {
				if j != i && cp[j] > longest {
					longest = cp[j]
				}
			}
		}
		cp[i] = workHint(spec.Components[i]) + longest
	}
	return cp
}

// loop dispatches until every stage is done, a failure has drained the
// in-flight stages, or the kill switch fired and the in-flight stages have
// drained (a dead coordinator does not kill jobs already running on remote
// machines — but it launches nothing new). Holding mu across dispatchLocked
// is safe: the attempt body runs on its own goroutine and only takes mu at
// completion.
func (d *dagRun) loop() {
	d.mu.Lock()
	defer func() {
		d.finished = true
		d.cond.Broadcast() // release the speculation monitor
		d.mu.Unlock()
	}()
	for {
		switch {
		case d.kill.Killed():
			if d.inflightLocked() == 0 {
				return
			}
		case d.done == len(d.spec.Components):
			return
		case d.failed:
			if d.inflightLocked() == 0 {
				return
			}
		default:
			for _, i := range d.runnableLocked() {
				if d.running[d.spec.Components[i].Machine] < d.maxPer {
					d.dispatchLocked(i)
					if d.kill.at(KillDispatch) {
						// The coordinator dies right after handing out a
						// stage: the journal already holds its running
						// record, nothing further is appended.
						d.journal.disable()
						break
					}
				}
			}
			if d.kill.Killed() {
				continue // re-evaluate as the drain condition
			}
		}
		d.cond.Wait()
	}
}

// inflightLocked counts running attempts (a speculated stage counts twice
// until one of its attempts returns).
func (d *dagRun) inflightLocked() int {
	return len(d.primAtt) + len(d.specAtt)
}

// runnableLocked returns the ready stages in dispatch order: longest
// critical path first, component index as the deterministic tie-break.
func (d *dagRun) runnableLocked() []int {
	var ready []int
	for i, st := range d.state {
		if st == stReady {
			ready = append(ready, i)
		}
	}
	sort.Slice(ready, func(a, b int) bool {
		if d.prio[ready[a]] != d.prio[ready[b]] {
			return d.prio[ready[a]] > d.prio[ready[b]]
		}
		return ready[a] < ready[b]
	})
	return ready
}

// imageLocked renders the scheduler state as journal states (the snapshot
// record payload).
func (d *dagRun) imageLocked() []uint8 {
	out := make([]uint8, len(d.state))
	for i, st := range d.state {
		switch st {
		case stReady:
			out[i] = StageReady
		case stRunning:
			out[i] = StageRunning
		case stDone:
			if d.errs[i] != nil {
				out[i] = StageFailed
			} else {
				out[i] = StageDone
			}
		default:
			out[i] = StagePending
		}
	}
	return out
}

// journalState appends one state record and interleaves a snapshot when the
// journal says the cadence is due. Callers hold mu.
func (d *dagRun) journalState(i int, st uint8, attemptN int) {
	if d.journal.State(i, st, attemptN) {
		d.journal.Snapshot(d.imageLocked())
	}
}

// dispatchLocked moves stage i to running and launches its primary attempt.
func (d *dagRun) dispatchLocked(i int) {
	comp := d.spec.Components[i]
	d.state[i] = stRunning
	d.running[comp.Machine]++
	d.attempts[i] = 1
	d.startAt[i] = d.clock.Now()
	att := &attempt{stage: i, n: 1, machine: comp.Machine}
	d.primAtt[i] = att
	r := d.runner
	r.Obs.Counter("wf.sched.dispatch.total").Inc()
	r.Obs.Gauge("wf.sched.running").Set(int64(d.inflightLocked()))
	r.Obs.Emit("wf.sched.dispatch", comp.Machine,
		obs.KV("workflow", d.spec.Name),
		obs.KV("component", comp.Name),
		obs.KV("priority", d.prio[i]),
		obs.KV("running_on_machine", d.running[comp.Machine]))
	d.journalState(i, StageRunning, 1)
	d.launchLocked(att, "wf-"+comp.Name)
}

// launchLocked starts att's goroutine; its completion funnels into finish.
func (d *dagRun) launchLocked(att *attempt, name string) {
	d.clock.Go(name, func() {
		t, err := d.exec(att.stage, att)
		d.mu.Lock()
		defer d.mu.Unlock()
		d.finish(att, t, err)
	})
}

// finish handles one attempt's completion under mu: commit, discard, fail,
// or win-and-repoint, then wake the dispatcher.
func (d *dagRun) finish(att *attempt, t Timing, err error) {
	i := att.stage
	comp := d.spec.Components[i]
	r := d.runner
	d.running[att.machine]--
	if att.n == 2 {
		delete(d.specAtt, i)
	} else {
		delete(d.primAtt, i)
	}
	defer func() {
		r.Obs.Gauge("wf.sched.running").Set(int64(d.inflightLocked()))
		d.cond.Broadcast()
	}()

	if d.state[i] == stDone {
		// The race is already decided: the sibling attempt committed while
		// this one was still running. Discard this attempt's partials.
		d.loseLocked(att)
		return
	}

	if err != nil {
		if errors.Is(err, ErrSpeculationLost) {
			d.loseLocked(att)
			return
		}
		if d.siblingLocked(att) != nil {
			// This attempt died but its sibling is still racing; the stage
			// itself is not failed. Treat the broken attempt as a loser.
			d.loseLocked(att)
			return
		}
		d.state[i] = stDone
		d.done++
		d.errs[i] = err
		d.failed = true
		r.Obs.Counter("wf.sched.fail.total").Inc()
		r.Obs.Emit("wf.sched.fail", att.machine,
			obs.KV("workflow", d.spec.Name),
			obs.KV("component", comp.Name))
		d.journalState(i, StageFailed, att.n)
		return
	}

	if d.attempts[i] > 1 {
		// A race was opened for this stage: outputs commit through a
		// first-writer-wins GNS claim, the single arbiter both attempts
		// share even across machines.
		if _, won := r.GNS.SetIfAbsent(commitScope(d.spec), commitKey(comp.Name),
			gns.Mapping{Mode: gns.ModeLocal, LocalPath: att.machine}); !won {
			d.loseLocked(att)
			return
		}
		if sib := d.siblingLocked(att); sib != nil {
			sib.markLost() // cut the loser off at its next IO
		}
		if att.n == 2 {
			r.Obs.Counter("wf.spec.win.total").Inc()
			r.Obs.Emit("wf.spec.win", att.machine,
				obs.KV("workflow", d.spec.Name),
				obs.KV("component", comp.Name))
		}
		d.journal.Spec(SpecWin, i, att.n, att.machine)
		if att.machine != comp.Machine {
			d.repointLocked(i, att.machine)
		}
	}
	d.home[i] = att.machine
	d.state[i] = stDone
	d.done++
	d.record(i, t)
	d.durations = append(d.durations, t.Finish-t.Start)
	d.journalState(i, StageDone, att.n)
	for _, j := range d.succ[i] {
		d.indeg[j]--
		if d.indeg[j] == 0 && d.state[j] == stPending {
			d.state[j] = stReady
			d.journalState(j, StageReady, 0)
		}
	}
}

// siblingLocked returns the other in-flight attempt of att's stage, if any.
func (d *dagRun) siblingLocked(att *attempt) *attempt {
	if att.n == 2 {
		return d.primAtt[att.stage]
	}
	return d.specAtt[att.stage]
}

// loseLocked discards a losing or broken attempt: its partial outputs are
// removed from its machine and, for a speculative attempt, the GNS entries
// its pre-staging overwrote are restored (the version bump makes any eager
// copy started under the speculative mapping discard itself at claim time).
func (d *dagRun) loseLocked(att *attempt) {
	att.markLost()
	i := att.stage
	comp := d.spec.Components[i]
	r := d.runner
	fs := r.Grid.Machine(att.machine).FS()
	for _, f := range comp.Outputs {
		if d.prod[f] != i {
			continue
		}
		fs.Remove(attemptPath(f, att.n))
	}
	for _, s := range att.saved {
		if s.had {
			r.GNS.Set(s.machine, s.path, s.mapping)
		} else {
			r.GNS.Delete(s.machine, s.path)
		}
	}
	if att.n == 2 || d.attempts[i] > 1 {
		r.Obs.Counter("wf.spec.lose.total").Inc()
		r.Obs.Emit("wf.spec.lose", att.machine,
			obs.KV("workflow", d.spec.Name),
			obs.KV("component", comp.Name),
			obs.KV("attempt", att.n))
		d.journal.Spec(SpecLose, i, att.n, att.machine)
	}
}

// repointLocked rewires every consumer of stage i's outputs to the winning
// machine. The winner is a speculative attempt, so its files live under the
// specSuffix namespace; consumers on other machines stage them with a copy
// whose local path keeps that namespace too — it must never collide with
// the plain-named file the losing primary may have half-written or eagerly
// staged there.
func (d *dagRun) repointLocked(i int, winner string) {
	repoint(d.runner, d.spec, d.prod, d.cons, i, winner)
}

// repoint is the machinery behind repointLocked, shared with the resume
// path (which must re-apply wins recorded in the journal after Configure
// rewrote the default entries).
func repoint(r *Runner, spec *Spec, prod map[string]int, cons map[string][]int, i int, winner string) {
	for _, f := range spec.Components[i].Outputs {
		if prod[f] != i {
			continue
		}
		wp := f + specSuffix
		for _, ci := range cons[f] {
			if ci == i {
				continue
			}
			cm := spec.Components[ci].Machine
			if cm == winner {
				r.GNS.Set(cm, f, gns.Mapping{Mode: gns.ModeLocal, LocalPath: wp})
			} else {
				r.GNS.Set(cm, f, gns.Mapping{
					Mode:       gns.ModeCopy,
					RemoteHost: winner + FileServicePort,
					RemotePath: wp,
					LocalPath:  wp,
				})
			}
		}
	}
}

// attemptPath is where attempt n of a stage writes output file f on its own
// machine: the primary uses the plain name, a speculative attempt the
// specSuffix namespace.
func attemptPath(f string, n int) string {
	if n == 2 {
		return f + specSuffix
	}
	return f
}

// commitScope and commitKey name the first-writer-wins claim a speculated
// stage's attempts race for. The "wf!"/"commit!" prefixes keep the keys out
// of any real machine/file namespace.
func commitScope(spec *Spec) string { return "wf!" + spec.Name }
func commitKey(name string) string  { return "commit!" + name }
