package workflow

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"griddles/internal/gns"
	"griddles/internal/obs"
	"griddles/internal/retry"
	"griddles/internal/simclock"
	"griddles/internal/simnet"
	"griddles/internal/testbed"
	"griddles/internal/vfs"
)

// startShardedGNS boots one gns.Server per address of spec on the grid's
// network and returns the seed addresses. Callers must be inside v.Run.
func startShardedGNS(t *testing.T, v *simclock.Virtual, n *simnet.Network, spec string) (seeds []string, closeAll func()) {
	t.Helper()
	sm, err := gns.ParseRing(spec)
	if err != nil {
		t.Fatal(err)
	}
	var servers []*gns.Server
	for _, s := range sm.Shards {
		seeds = append(seeds, s.Addrs[0])
		for _, addr := range s.Addrs {
			host := addr[:strings.IndexByte(addr, ':')]
			srv := gns.NewServer(gns.NewStore(v), v)
			l, err := n.Host(host).Listen(addr)
			if err != nil {
				t.Fatalf("listen %s: %v", addr, err)
			}
			if err := srv.EnableShard(gns.ShardConfig{
				Map: sm, ID: s.ID, Self: addr, Dialer: n.Host(host),
			}); err != nil {
				t.Fatalf("enable shard %s: %v", addr, err)
			}
			v.Go("gns-serve-"+addr, func() { srv.Serve(l) })
			servers = append(servers, srv)
		}
	}
	return seeds, func() {
		for _, srv := range servers {
			srv.Close()
		}
	}
}

// TestSpeculationCommitsThroughShardedDirectory runs the straggler
// speculation workflow with the coordinator's GNS behind a sharded,
// replicated directory instead of the embedded store: every FM resolve and
// every coordinator write — including the first-writer-wins SetIfAbsent
// commit that decides the speculation race — crosses the wire to the owning
// shard's leaseholder. The workflow output must stay byte-identical.
func TestSpeculationCommitsThroughShardedDirectory(t *testing.T) {
	const seed, payload = 3, 64 << 10
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	o := obs.New(v)
	runner := &Runner{Grid: grid, Obs: o, Speculate: true, SpecInterval: 7 * time.Second}
	var dir *gns.DirectoryClient
	v.Run(func() {
		if err := StartServices(v, grid); err != nil {
			t.Fatal(err)
		}
		seeds, closeAll := startShardedGNS(t, v, grid.Network(), "0=gnsa:5000,gnsar:5000;1=gnsb:5000,gnsbr:5000")
		defer closeAll()
		c := gns.NewShardedClient(grid.Network().Host("coord"), seeds, v)
		p := retry.Default(v)
		p.BaseDelay = 100 * time.Millisecond
		p.MaxDelay = time.Second
		p.AttemptTimeout = 2 * time.Second
		c.SetRetry(p)
		defer c.Close()
		dir = gns.NewDirectoryClient(c)
		runner.GNS = dir

		rep, err := runner.Run(stragglerSpec(seed, payload), CouplingSequential)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if rep.Total <= 0 {
			t.Error("empty report")
		}
		v.Sleep(5 * time.Minute) // drain the losing primary's discard
	})

	c := o.Snapshot().Counters
	if c["wf.spec.launch.total"] != 1 || c["wf.spec.win.total"] != 1 {
		t.Errorf("launch/win = %d/%d, want 1/1",
			c["wf.spec.launch.total"], c["wf.spec.win.total"])
	}
	if err := dir.Err(); err != nil {
		t.Errorf("directory degraded during the run: %v", err)
	}
	got, err := vfs.ReadFile(grid.Machine("dione").RawFS(), "FINAL.DAT")
	if err != nil {
		t.Fatalf("FINAL.DAT: %v", err)
	}
	if !bytes.Equal(got, wantFinal(seed, payload)) {
		t.Error("FINAL.DAT differs from the embedded-store ground truth")
	}
}
