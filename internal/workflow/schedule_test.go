package workflow

import (
	"testing"

	"griddles/internal/simclock"
	"griddles/internal/testbed"
)

func schedSpec() *Spec {
	return &Spec{Name: "sched", Components: []Component{
		{Name: "light1", WorkHint: 10},
		{Name: "heavy", WorkHint: 300},
		{Name: "light2", WorkHint: 10},
		{Name: "medium", WorkHint: 150},
	}}
}

func TestAutoAssignSequentialUsesFastest(t *testing.T) {
	grid := testbed.DefaultGrid(simclock.NewVirtualDefault())
	spec := schedSpec()
	if err := AutoAssign(spec, grid, CouplingSequential); err != nil {
		t.Fatal(err)
	}
	for _, c := range spec.Components {
		if c.Machine != "brecca" {
			t.Errorf("%s assigned to %s, want brecca (fastest, no copies)", c.Name, c.Machine)
		}
	}
}

func TestAutoAssignBuffersSpreads(t *testing.T) {
	grid := testbed.DefaultGrid(simclock.NewVirtualDefault())
	spec := schedSpec()
	if err := AutoAssign(spec, grid, CouplingBuffers); err != nil {
		t.Fatal(err)
	}
	// The heaviest stage lands on the fastest machine.
	for _, c := range spec.Components {
		if c.Name == "heavy" && c.Machine != "brecca" {
			t.Errorf("heavy on %s, want brecca", c.Machine)
		}
	}
	// Co-scheduled stages do not all pile onto one machine.
	machines := map[string]bool{}
	for _, c := range spec.Components {
		machines[c.Machine] = true
	}
	if len(machines) < 2 {
		t.Errorf("all stages on one machine: %v", machines)
	}
}

func TestAutoAssignRespectsPins(t *testing.T) {
	grid := testbed.DefaultGrid(simclock.NewVirtualDefault())
	spec := schedSpec()
	spec.Components[1].Machine = "jagan" // heavy pinned to the slowest box
	if err := AutoAssign(spec, grid, CouplingBuffers); err != nil {
		t.Fatal(err)
	}
	if spec.Components[1].Machine != "jagan" {
		t.Error("pin overridden")
	}
	for _, c := range spec.Components {
		if c.Machine == "" {
			t.Errorf("%s unassigned", c.Name)
		}
	}
}

func TestAutoAssignUnknownPinFails(t *testing.T) {
	grid := testbed.DefaultGrid(simclock.NewVirtualDefault())
	spec := &Spec{Components: []Component{{Name: "x", Machine: "hal9000"}}}
	if err := AutoAssign(spec, grid, CouplingBuffers); err == nil {
		t.Error("unknown pinned machine accepted")
	}
}

func TestAutoAssignBalancedLoad(t *testing.T) {
	// Eight equal stages over the grid: no machine should get more than a
	// fair share of the normalized load.
	grid := testbed.DefaultGrid(simclock.NewVirtualDefault())
	spec := &Spec{Name: "even"}
	for i := 0; i < 8; i++ {
		spec.Components = append(spec.Components, Component{Name: string(rune('a' + i)), WorkHint: 100})
	}
	if err := AutoAssign(spec, grid, CouplingBuffers); err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, c := range spec.Components {
		count[c.Machine]++
	}
	for m, n := range count {
		if n > 3 {
			t.Errorf("machine %s got %d of 8 equal stages", m, n)
		}
	}
	// The slowest machines should not be preferred over brecca.
	if count["brecca"] == 0 {
		t.Error("fastest machine unused")
	}
}
