package workflow

import (
	"testing"

	"griddles/internal/simclock"
	"griddles/internal/testbed"
)

func schedSpec() *Spec {
	return &Spec{Name: "sched", Components: []Component{
		{Name: "light1", WorkHint: 10},
		{Name: "heavy", WorkHint: 300},
		{Name: "light2", WorkHint: 10},
		{Name: "medium", WorkHint: 150},
	}}
}

func TestAutoAssignSequentialUsesFastest(t *testing.T) {
	grid := testbed.DefaultGrid(simclock.NewVirtualDefault())
	spec := schedSpec()
	if err := AutoAssign(spec, grid, CouplingSequential); err != nil {
		t.Fatal(err)
	}
	for _, c := range spec.Components {
		if c.Machine != "brecca" {
			t.Errorf("%s assigned to %s, want brecca (fastest, no copies)", c.Name, c.Machine)
		}
	}
}

func TestAutoAssignBuffersSpreads(t *testing.T) {
	grid := testbed.DefaultGrid(simclock.NewVirtualDefault())
	spec := schedSpec()
	if err := AutoAssign(spec, grid, CouplingBuffers); err != nil {
		t.Fatal(err)
	}
	// The heaviest stage lands on the fastest machine.
	for _, c := range spec.Components {
		if c.Name == "heavy" && c.Machine != "brecca" {
			t.Errorf("heavy on %s, want brecca", c.Machine)
		}
	}
	// Co-scheduled stages do not all pile onto one machine.
	machines := map[string]bool{}
	for _, c := range spec.Components {
		machines[c.Machine] = true
	}
	if len(machines) < 2 {
		t.Errorf("all stages on one machine: %v", machines)
	}
}

func TestAutoAssignRespectsPins(t *testing.T) {
	grid := testbed.DefaultGrid(simclock.NewVirtualDefault())
	spec := schedSpec()
	spec.Components[1].Machine = "jagan" // heavy pinned to the slowest box
	if err := AutoAssign(spec, grid, CouplingBuffers); err != nil {
		t.Fatal(err)
	}
	if spec.Components[1].Machine != "jagan" {
		t.Error("pin overridden")
	}
	for _, c := range spec.Components {
		if c.Machine == "" {
			t.Errorf("%s unassigned", c.Name)
		}
	}
}

func TestAutoAssignUnknownPinFails(t *testing.T) {
	grid := testbed.DefaultGrid(simclock.NewVirtualDefault())
	spec := &Spec{Components: []Component{{Name: "x", Machine: "hal9000"}}}
	if err := AutoAssign(spec, grid, CouplingBuffers); err == nil {
		t.Error("unknown pinned machine accepted")
	}
}

func TestAutoAssignBalancedLoad(t *testing.T) {
	// Eight equal stages over the grid: no machine should get more than a
	// fair share of the normalized load.
	grid := testbed.DefaultGrid(simclock.NewVirtualDefault())
	spec := &Spec{Name: "even"}
	for i := 0; i < 8; i++ {
		spec.Components = append(spec.Components, Component{Name: string(rune('a' + i)), WorkHint: 100})
	}
	if err := AutoAssign(spec, grid, CouplingBuffers); err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, c := range spec.Components {
		count[c.Machine]++
	}
	for m, n := range count {
		if n > 3 {
			t.Errorf("machine %s got %d of 8 equal stages", m, n)
		}
	}
	// The slowest machines should not be preferred over brecca.
	if count["brecca"] == 0 {
		t.Error("fastest machine unused")
	}
}

func TestAutoAssignLightStagesFollowTheirData(t *testing.T) {
	// A light transform reading the heavy solver's output must land on the
	// solver's machine, keeping the coupling stream off the WAN; a light
	// stage with no placed neighbours falls back to the fastest box.
	grid := testbed.DefaultGrid(simclock.NewVirtualDefault())
	spec := &Spec{Name: "colo", Components: []Component{
		{Name: "solver", WorkHint: 300, Outputs: []string{"field.dat"}},
		{Name: "transform", WorkHint: 5, Inputs: []string{"field.dat"}, Outputs: []string{"t.dat"}},
		{Name: "loner", WorkHint: 5},
	}}
	if err := AutoAssign(spec, grid, CouplingBuffers); err != nil {
		t.Fatal(err)
	}
	solver, transform, loner := spec.Components[0], spec.Components[1], spec.Components[2]
	if transform.Machine != solver.Machine {
		t.Errorf("transform on %s, solver on %s: light stage did not follow its data",
			transform.Machine, solver.Machine)
	}
	if loner.Machine != "brecca" {
		t.Errorf("neighbourless light stage on %s, want brecca (fastest)", loner.Machine)
	}
}

func TestAutoAssignLightStagePrefersHeaviestNeighbour(t *testing.T) {
	// A light reducer consuming two solvers' outputs co-locates with the
	// heavier of the two.
	grid := testbed.DefaultGrid(simclock.NewVirtualDefault())
	spec := &Spec{Name: "reduce", Components: []Component{
		{Name: "big", WorkHint: 300, Outputs: []string{"big.dat"}},
		{Name: "small", WorkHint: 200, Outputs: []string{"small.dat"}},
		{Name: "reducer", WorkHint: 5, Inputs: []string{"big.dat", "small.dat"}},
	}}
	if err := AutoAssign(spec, grid, CouplingBuffers); err != nil {
		t.Fatal(err)
	}
	if spec.Components[2].Machine != spec.Components[0].Machine {
		t.Errorf("reducer on %s, want %s (heaviest producer)",
			spec.Components[2].Machine, spec.Components[0].Machine)
	}
}

func TestAutoAssignPinnedMachinesPreloaded(t *testing.T) {
	// A stage pinned to the fastest machine counts toward its load, so an
	// equal unassigned stage is pushed to the next machine instead of
	// doubling up behind the pin.
	grid := testbed.DefaultGrid(simclock.NewVirtualDefault())
	spec := &Spec{Name: "preload", Components: []Component{
		{Name: "pinned", Machine: "brecca", WorkHint: 300},
		{Name: "free", WorkHint: 300},
	}}
	if err := AutoAssign(spec, grid, CouplingBuffers); err != nil {
		t.Fatal(err)
	}
	if m := spec.Components[1].Machine; m == "brecca" {
		t.Error("free stage stacked behind the pinned one on brecca")
	}
}

func TestAutoAssignCriticalPathHeadsGetFastBoxes(t *testing.T) {
	// The head of a three-stage chain (critical path 300) must be placed
	// before — and therefore faster than — a lone 250-unit stage, even
	// though the lone stage's own work is larger. Plain LPT would order by
	// per-stage work and give brecca to the lone stage instead.
	grid := testbed.DefaultGrid(simclock.NewVirtualDefault())
	spec := &Spec{Name: "spine", Components: []Component{
		{Name: "head", WorkHint: 100, Outputs: []string{"h.dat"}},
		{Name: "mid", WorkHint: 100, Inputs: []string{"h.dat"}, Outputs: []string{"m.dat"}},
		{Name: "tail", WorkHint: 100, Inputs: []string{"m.dat"}},
		{Name: "lone", WorkHint: 250},
	}}
	if err := AutoAssign(spec, grid, CouplingBuffers); err != nil {
		t.Fatal(err)
	}
	if spec.Components[0].Machine != "brecca" {
		t.Errorf("chain head on %s, want brecca (longest remaining path)", spec.Components[0].Machine)
	}
}
