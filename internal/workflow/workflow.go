// Package workflow turns a declarative description of a grid workflow — a
// set of legacy components and the files they exchange — into a running,
// timed execution on the testbed.
//
// The key design point mirrors the paper: a workflow's *coupling* (local
// files, staged copies between machines, or direct Grid Buffer streams) is
// not part of the components. The Runner writes the appropriate GNS entries
// for the chosen coupling and the unmodified component code does the rest.
// It also applies the matching scheduling constraint the paper's conclusion
// calls out: file-copied workflows run their stages sequentially (DAGman
// style), buffer-coupled workflows co-schedule everything.
package workflow

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"griddles/internal/core"
	"griddles/internal/gns"
	"griddles/internal/gridbuffer"
	"griddles/internal/gridftp"
	"griddles/internal/objstore"
	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/soap"
	"griddles/internal/testbed"
)

// Well-known service ports on every testbed machine.
const (
	FileServicePort        = ":6000"
	BufferServicePort      = ":7000"
	SOAPBufferServicePort  = ":7001"
	ObjectStoreServicePort = ":7100"
)

// Ctx is what a component body receives: a File Multiplexer plus the
// machine it runs on. Component code must do all IO through FM and all
// computation through Compute.
type Ctx struct {
	// Name is the component's name.
	Name string
	// FM is the component's File Multiplexer.
	FM *core.Multiplexer
	// Machine is the testbed machine the component is scheduled on.
	Machine *testbed.Machine
	// Clock is the simulation or wall clock.
	Clock simclock.Clock

	mark func(name string)
}

// Compute burns CPU work (brecca-seconds) on the component's machine.
func (c *Ctx) Compute(units float64) { c.Machine.Compute(units) }

// Mark records a named timestamp ("component/name") in the run report —
// e.g. when a staged input copy finished.
func (c *Ctx) Mark(name string) {
	if c.mark != nil {
		c.mark(name)
	}
}

// Component is one program in the pipeline.
type Component struct {
	// Name identifies the component in reports and DOT output.
	Name string
	// Machine names the testbed machine the component runs on.
	Machine string
	// Inputs and Outputs are the file names the component opens; they
	// define the dataflow edges.
	Inputs  []string
	Outputs []string
	// WorkHint is the component's approximate compute cost in work units,
	// used by AutoAssign; 0 means unknown (treated as 1).
	WorkHint float64
	// Run is the component body.
	Run func(*Ctx) error
}

// Spec is a whole workflow.
type Spec struct {
	Name       string
	Components []Component
}

// Coupling selects how intermediate files move between components.
type Coupling int

const (
	// CouplingSequential runs components in topological order with local
	// files, staging copies between machines (the paper's experiment-1 /
	// Table-3 / Table-5 "Files" configuration).
	CouplingSequential Coupling = iota
	// CouplingFiles starts all components concurrently; readers poll for
	// writer completion markers (the paper's Table-4 "With Files" runs).
	CouplingFiles
	// CouplingBuffers couples writers to readers with Grid Buffers and
	// co-schedules everything (the paper's "GridFiles"/"Buffers" runs).
	CouplingBuffers
	// CouplingObjects couples components through the object-store service
	// (mechanism 7): each intermediate file becomes a whole object committed
	// atomically at the producer's close, readers poll for its visibility
	// (no completion markers needed) and serve themselves with ranged GETs.
	// Components are co-scheduled like buffer runs.
	CouplingObjects
)

// String implements fmt.Stringer.
func (c Coupling) String() string {
	switch c {
	case CouplingSequential:
		return "sequential-files"
	case CouplingFiles:
		return "concurrent-files"
	case CouplingBuffers:
		return "buffers"
	case CouplingObjects:
		return "objects"
	default:
		return fmt.Sprintf("coupling(%d)", int(c))
	}
}

// producers maps each file to the index of the component producing it.
func (s *Spec) producers() (map[string]int, error) {
	p := make(map[string]int)
	for i, c := range s.Components {
		for _, out := range c.Outputs {
			if prev, dup := p[out]; dup {
				return nil, fmt.Errorf("workflow: file %q produced by both %s and %s",
					out, s.Components[prev].Name, c.Name)
			}
			p[out] = i
		}
	}
	return p, nil
}

// consumers maps each file to the indices of components reading it.
func (s *Spec) consumers() map[string][]int {
	c := make(map[string][]int)
	for i, comp := range s.Components {
		for _, in := range comp.Inputs {
			c[in] = append(c[in], i)
		}
	}
	return c
}

// TopoOrder returns component indices in dependency order.
func (s *Spec) TopoOrder() ([]int, error) {
	prod, err := s.producers()
	if err != nil {
		return nil, err
	}
	n := len(s.Components)
	adj := make([][]int, n)
	indeg := make([]int, n)
	for i, c := range s.Components {
		for _, in := range c.Inputs {
			if p, ok := prod[in]; ok && p != i {
				adj[p] = append(adj[p], i)
				indeg[i]++
			}
		}
	}
	queue := []int{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		sort.Ints(queue)
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, j := range adj[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("workflow: %s has a dependency cycle", s.Name)
	}
	return order, nil
}

// DOT renders the workflow's dataflow graph in Graphviz format (used to
// regenerate the paper's Figure 1 and Figure 5 diagrams).
func (s *Spec) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", s.Name)
	fmt.Fprintf(&b, "  node [shape=box, style=rounded];\n")
	prod, _ := s.producers()
	cons := s.consumers()
	files := make(map[string]bool)
	for _, c := range s.Components {
		label := c.Name
		if c.Machine != "" {
			label += "\\n(" + c.Machine + ")"
		}
		fmt.Fprintf(&b, "  %q [label=%q];\n", c.Name, label)
		for _, f := range append(append([]string{}, c.Inputs...), c.Outputs...) {
			files[f] = true
		}
	}
	var names []string
	for f := range files {
		names = append(names, f)
	}
	sort.Strings(names)
	for _, f := range names {
		fmt.Fprintf(&b, "  %q [shape=note, fontsize=10];\n", "file:"+f)
		if p, ok := prod[f]; ok {
			fmt.Fprintf(&b, "  %q -> %q;\n", s.Components[p].Name, "file:"+f)
		}
		for _, ci := range cons[f] {
			fmt.Fprintf(&b, "  %q -> %q;\n", "file:"+f, s.Components[ci].Name)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Timing is one component's observed schedule, as offsets from run start.
type Timing struct {
	Name    string
	Machine string
	Start   time.Duration
	Finish  time.Duration
}

// Report is the result of one workflow run; Finish offsets are directly
// comparable to the paper's cumulative tables.
type Report struct {
	Workflow string
	Coupling Coupling
	Total    time.Duration
	Timings  []Timing
	// Marks are component-recorded timestamps keyed "component/mark".
	Marks map[string]time.Duration
}

// Mark reports a recorded timestamp.
func (r *Report) Mark(key string) (time.Duration, bool) {
	d, ok := r.Marks[key]
	return d, ok
}

// Timing reports the named component's entry.
func (r *Report) Timing(name string) (Timing, bool) {
	for _, t := range r.Timings {
		if t.Name == name {
			return t, true
		}
	}
	return Timing{}, false
}

// String renders the report as an aligned table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workflow %s [%s] total %s\n", r.Workflow, r.Coupling, fmtDur(r.Total))
	for _, t := range r.Timings {
		fmt.Fprintf(&b, "  %-14s %-9s start %9s finish %9s\n", t.Name, t.Machine, fmtDur(t.Start), fmtDur(t.Finish))
	}
	return b.String()
}

// fmtDur formats like the paper's tables (hh:mm:ss).
func fmtDur(d time.Duration) string {
	d = d.Round(time.Second)
	h := d / time.Hour
	m := (d % time.Hour) / time.Minute
	s := (d % time.Minute) / time.Second
	return fmt.Sprintf("%02d:%02d:%02d", h, m, s)
}

// FormatDuration exposes the table format used in reports.
func FormatDuration(d time.Duration) string { return fmtDur(d) }

// StartServices brings up a file service and a Grid Buffer service on every
// machine of the grid. Call inside the clock's Run.
func StartServices(clock simclock.Clock, grid *testbed.Grid) error {
	for name, m := range grid.Machines() {
		m := m
		lf, err := m.Listen(FileServicePort)
		if err != nil {
			return fmt.Errorf("workflow: %s file service: %w", name, err)
		}
		clock.Go(name+"-gridftp", func() { gridftp.NewServer(m.FS(), clock).Serve(lf) })
		lb, err := m.Listen(BufferServicePort)
		if err != nil {
			return fmt.Errorf("workflow: %s buffer service: %w", name, err)
		}
		reg := gridbuffer.NewRegistry(clock, m.FS())
		clock.Go(name+"-gridbuffer", func() { gridbuffer.NewServer(reg, clock).Serve(lb) })
		// The same registry behind the paper's SOAP endpoint.
		ls, err := m.Listen(SOAPBufferServicePort)
		if err != nil {
			return fmt.Errorf("workflow: %s soap buffer service: %w", name, err)
		}
		clock.Go(name+"-soapbuffer", func() { soap.ServeBuffer(clock, reg).Serve(ls) })
		lo, err := m.Listen(ObjectStoreServicePort)
		if err != nil {
			return fmt.Errorf("workflow: %s object store service: %w", name, err)
		}
		clock.Go(name+"-objstore", func() { objstore.NewServer(objstore.NewStore(), clock).Serve(lo) })
	}
	return nil
}

// Runner executes workflows on a grid.
type Runner struct {
	Grid *testbed.Grid
	// GNS is the name service the coordinator programs: the embedded *Store
	// (historical, workflow-private) or a *DirectoryClient over a shared —
	// possibly sharded — gnsd cluster, whose writes (including the
	// SetIfAbsent speculation commit) route to each shard's leaseholder.
	GNS gns.Directory

	// PollInterval paces WaitClose polling (default 200ms).
	PollInterval time.Duration
	// PollWork is the CPU time in seconds each WaitClose poll burns on the
	// polling machine (default 0.004). It is charged as constant *time*
	// rather than constant work: the poll path (stat + name-service check)
	// cost roughly the same milliseconds on every 2004 box.
	PollWork float64
	// WriterWindow / ReaderDepth tune buffer pipelining (defaults in
	// package gridbuffer).
	WriterWindow int
	ReaderDepth  int
	// ConnPerCall selects the SOAP-style connection-per-call buffer
	// transport (the paper's implementation; see gridbuffer.WriterOptions).
	ConnPerCall bool
	// SOAP routes buffer traffic through the actual SOAP/HTTP endpoint
	// instead of the binary protocol (a heavier, fully faithful mode).
	SOAP bool
	// BlockSize overrides the Grid Buffer block size for all coupled files
	// (0 keeps the paper's 4096-byte default).
	BlockSize int
	// CopyStreams is the parallel-stream count for staging copies.
	CopyStreams int
	// BufferAt overrides Grid Buffer placement per file; the default is the
	// first consumer's machine (the paper's reader-end placement).
	BufferAt map[string]string
	// CacheFiles enables the buffer cache file per file name; files listed
	// here support reader seek/re-read (the DARLAM pattern).
	CacheFiles map[string]bool
	// MaxPerMachine bounds how many CouplingSequential stages may run
	// concurrently on one machine under the DAG scheduler. 0 means 1 — the
	// paper's one-job-per-box regime, under which pure chains execute
	// exactly as the historical serial executor did.
	MaxPerMachine int
	// EagerCopy starts each staging copy toward a remote consumer as soon
	// as the producer closes the file, overlapping transfers with upstream
	// compute; the consumer's open adopts the eager copy. Off by default
	// (the paper charges copies inside the consumer's slot).
	EagerCopy bool
	// Serial forces the historical strict-sequential executor for
	// CouplingSequential (one stage at a time in topological order),
	// ignoring MaxPerMachine and EagerCopy. Mainly for A/B benchmarks.
	Serial bool
	// Journal, if set, appends every coordinator transition to a durable
	// log so a crashed run can be resumed (Resume). Only the sequential-
	// files DAG scheduler journals; nil (the default) keeps the executor
	// byte-identical to the unjournaled one.
	Journal *Journal
	// Kill is the chaos harness's coordinator crash switch: when its named
	// point fires, the coordinator stops dispatching and journaling,
	// in-flight stages drain, and Run returns ErrCoordinatorKilled.
	Kill *KillSwitch
	// Speculate enables stage-level speculative re-execution: a running
	// stage that exceeds a percentile-based straggler threshold is
	// re-launched on an idle machine; the first attempt to finish commits
	// its outputs through a first-writer-wins GNS claim and the loser's
	// partial outputs are discarded. Requires deterministic stage bodies.
	Speculate bool
	// SpecFactor scales the straggler threshold: a stage is a straggler
	// once its runtime exceeds SpecFactor × the p75 of completed stage
	// durations (default 1.5).
	SpecFactor float64
	// SpecMinSamples is how many stages must complete before the
	// straggler threshold is trusted (default 3).
	SpecMinSamples int
	// SpecInterval paces the speculation monitor's scans (default 5s of
	// virtual time).
	SpecInterval time.Duration
	// Obs, if set, is shared by every component's File Multiplexer and
	// receives per-stage "wf.stage" events (wall time and IO volume per
	// component) plus the GNS store's metrics. nil keeps each FM on its own
	// private observer, exactly as before.
	Obs *obs.Observer
}

// Configure writes the GNS entries that implement the requested coupling
// for spec. It is exposed separately from Run so examples can show the
// "reconfigure by editing the GNS only" property.
func (r *Runner) Configure(spec *Spec, coupling Coupling) error {
	prod, err := spec.producers()
	if err != nil {
		return err
	}
	cons := spec.consumers()
	for file, pi := range prod {
		producer := spec.Components[pi]
		consumers := cons[file]
		switch coupling {
		case CouplingSequential, CouplingFiles:
			wait := coupling == CouplingFiles
			r.GNS.Set(producer.Machine, file, gns.Mapping{Mode: gns.ModeLocal, WaitClose: wait})
			for _, ci := range consumers {
				consumer := spec.Components[ci]
				if consumer.Machine == producer.Machine {
					r.GNS.Set(consumer.Machine, file, gns.Mapping{Mode: gns.ModeLocal, WaitClose: wait})
				} else {
					r.GNS.Set(consumer.Machine, file, gns.Mapping{
						Mode:       gns.ModeCopy,
						RemoteHost: producer.Machine + FileServicePort,
						RemotePath: file,
						WaitClose:  wait,
					})
				}
			}
		case CouplingBuffers:
			if len(consumers) == 0 {
				// Terminal outputs stay plain local files.
				r.GNS.Set(producer.Machine, file, gns.Mapping{Mode: gns.ModeLocal})
				continue
			}
			bufferMachine := spec.Components[consumers[0]].Machine
			if m, ok := r.BufferAt[file]; ok {
				bufferMachine = m
			}
			bufferPort := BufferServicePort
			if r.SOAP {
				bufferPort = SOAPBufferServicePort
			}
			mapping := gns.Mapping{
				Mode:         gns.ModeBuffer,
				BufferHost:   bufferMachine + bufferPort,
				BufferKey:    spec.Name + "/" + file,
				CacheEnabled: r.CacheFiles[file],
				Readers:      len(consumers),
				BlockSize:    r.BlockSize,
			}
			r.GNS.Set(producer.Machine, file, mapping)
			for _, ci := range consumers {
				r.GNS.Set(spec.Components[ci].Machine, file, mapping)
			}
		case CouplingObjects:
			if len(consumers) == 0 {
				// Terminal outputs stay plain local files.
				r.GNS.Set(producer.Machine, file, gns.Mapping{Mode: gns.ModeLocal})
				continue
			}
			// Reader-end placement, as for buffers: the object lands on the
			// first consumer's store so its ranged GETs stay machine-local.
			objMachine := spec.Components[consumers[0]].Machine
			mapping := gns.Mapping{
				Mode:       gns.ModeObject,
				RemoteHost: objMachine + ObjectStoreServicePort,
				RemotePath: spec.Name + "/" + file,
				WaitClose:  true,
			}
			r.GNS.Set(producer.Machine, file, mapping)
			for _, ci := range consumers {
				r.GNS.Set(spec.Components[ci].Machine, file, mapping)
			}
		default:
			return fmt.Errorf("workflow: unknown coupling %d", coupling)
		}
	}
	return nil
}

// Run configures the GNS for the coupling, executes the workflow and
// returns per-component timings. Services must already be running
// (StartServices) and the caller must be inside the clock's Run.
func (r *Runner) Run(spec *Spec, coupling Coupling) (*Report, error) {
	return r.run(spec, coupling, nil)
}

// run is the shared body behind Run and Resume; img is the replayed journal
// image when resuming, nil for a fresh run.
func (r *Runner) run(spec *Spec, coupling Coupling, img *RunImage) (*Report, error) {
	durable := coupling == CouplingSequential && !r.Serial
	if (r.Journal != nil || r.Speculate || img != nil) && !durable {
		return nil, fmt.Errorf("workflow: journaling, speculation and resume require the sequential-files DAG scheduler (got %s, serial=%v)", coupling, r.Serial)
	}
	if err := r.Configure(spec, coupling); err != nil {
		return nil, err
	}
	if r.Obs != nil {
		r.GNS.SetObserver(r.Obs)
	}
	clock := r.Grid.Clock()
	if r.Journal != nil {
		r.Journal.kill = r.Kill
		if r.Journal.clock == nil {
			r.Journal.clock = clock
		}
		r.Journal.SetObserver(r.Obs)
	}
	if img != nil {
		// Configure re-wrote the default coupling entries; now undo what
		// the crashed session's speculation wins and commit claims left
		// behind, and re-point consumers of speculated-done stages.
		r.cleanupResume(spec, img)
	}
	if r.Journal != nil {
		// Each coordinator session appends its own header; a resumed file
		// reads as a sequence of sessions over one run.
		r.Journal.Header(spec.Name, SpecHash(spec, coupling), len(spec.Components), coupling)
	}
	start := clock.Now()
	report := &Report{
		Workflow: spec.Name, Coupling: coupling,
		Timings: make([]Timing, len(spec.Components)),
		Marks:   make(map[string]time.Duration),
	}
	var markMu sync.Mutex

	var eager *eagerTracker
	if r.EagerCopy && coupling == CouplingSequential && !r.Serial {
		eager = newEagerTracker(r, spec)
	}

	// exec runs one attempt of stage i on att.machine and returns its
	// timing. The DAG scheduler may run two attempts of a straggler stage
	// concurrently; att carries which one this is and its lost-race
	// interrupt.
	exec := func(i int, att *attempt) (Timing, error) {
		comp := spec.Components[i]
		machine := r.Grid.Machine(att.machine)
		release := machine.Attach()
		defer release()
		cfg := core.Config{
			Machine:           att.machine,
			Clock:             clock,
			FS:                machine.FS(),
			Dialer:            machine,
			GNS:               r.GNS,
			PollInterval:      r.PollInterval,
			PollCost:          func() { machine.Compute(r.pollWork() * machine.Spec().SpeedFactor) },
			WriterWindow:      r.WriterWindow,
			ReaderDepth:       r.ReaderDepth,
			BufferConnPerCall: r.ConnPerCall,
			BufferTransport:   bufferTransport(r.SOAP),
			CopyStreams:       r.CopyStreams,
			Interrupt:         att.interrupt,
			Obs:               r.Obs,
		}
		if eager != nil {
			cfg.Prestage = eager
			cfg.CloseNotify = func(path string) { eager.produced(att.machine, path) }
		}
		fm, err := core.New(cfg)
		if err != nil {
			return Timing{}, err
		}
		defer fm.Close()
		t := Timing{Name: comp.Name, Machine: att.machine, Start: clock.Now().Sub(start)}
		ctx := &Ctx{Name: comp.Name, FM: fm, Machine: machine, Clock: clock,
			mark: func(name string) {
				markMu.Lock()
				report.Marks[comp.Name+"/"+name] = clock.Now().Sub(start)
				markMu.Unlock()
			}}
		// Per-stage IO deltas: with a shared Observer, same-machine FMs
		// aggregate into one counter, so subtract the pre-run values.
		st := fm.Stats()
		readBefore, writeBefore, pollsBefore := st.BytesRead(), st.BytesWritten(), st.Polls()
		if err := comp.Run(ctx); err != nil {
			return t, fmt.Errorf("workflow: component %s: %w", comp.Name, err)
		}
		t.Finish = clock.Now().Sub(start)
		if r.Obs != nil {
			wall := t.Finish - t.Start
			r.Obs.Histogram("wf.stage.wall_ms").ObserveDuration(wall)
			r.Obs.Emit("wf.stage", att.machine,
				obs.KV("workflow", spec.Name),
				obs.KV("component", comp.Name),
				obs.KV("coupling", coupling.String()),
				obs.KV("wall_ms", wall),
				obs.KV("read_bytes", st.BytesRead()-readBefore),
				obs.KV("write_bytes", st.BytesWritten()-writeBefore),
				obs.KV("polls", st.Polls()-pollsBefore))
		}
		return t, nil
	}
	runOne := func(i int) error {
		t, err := exec(i, &attempt{stage: i, n: 1, machine: spec.Components[i].Machine})
		if err == nil {
			report.Timings[i] = t
		}
		return err
	}
	record := func(i int, t Timing) { report.Timings[i] = t }

	switch coupling {
	case CouplingSequential:
		if r.Serial {
			// The historical strict-sequential executor: one stage at a
			// time, topological order, stop at the first failure.
			order, err := spec.TopoOrder()
			if err != nil {
				return nil, err
			}
			for _, i := range order {
				if err := runOne(i); err != nil {
					return nil, err
				}
			}
		} else {
			err := r.runDAG(spec, exec, record, img)
			if eager != nil {
				eager.drain()
			}
			if err != nil {
				return nil, err
			}
		}
	case CouplingFiles, CouplingBuffers, CouplingObjects:
		errs := make([]error, len(spec.Components))
		wg := simclock.NewWaitGroup(clock)
		for i := range spec.Components {
			i := i
			wg.Add(1)
			clock.Go(spec.Components[i].Name, func() {
				defer wg.Done()
				errs[i] = runOne(i)
			})
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("workflow: unknown coupling %d", coupling)
	}
	report.Total = clock.Now().Sub(start)
	return report, nil
}

func bufferTransport(soapMode bool) string {
	if soapMode {
		return "soap"
	}
	return ""
}

func (r *Runner) pollWork() float64 {
	if r.PollWork > 0 {
		return r.PollWork
	}
	return 0.004
}
