package workflow

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
	"time"

	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/wire"
)

// frameBytes frames one encoded record payload the way Journal.append does.
func frameBytes(payload []byte) []byte {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	return append(hdr[:], payload...)
}

func encodeRec(rec *record) []byte {
	e := wire.NewEncoder()
	rec.encode(e)
	return append([]byte(nil), e.Bytes()...)
}

func headerRec(workflow string, nstages int) *record {
	return &record{kind: recHeader, format: journalFormat, workflow: workflow,
		specHash: [32]byte{1, 2, 3}, nstages: uint32(nstages), coupling: uint8(CouplingSequential)}
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	v := simclock.NewVirtualDefault()
	sink := &MemSink{}
	j := NewJournal(sink, v)
	o := obs.New(v)
	j.SetObserver(o)

	j.Header("demo", [32]byte{9}, 4, CouplingSequential)
	if due := j.State(0, StageRunning, 1); due {
		t.Error("snapshot due after one state record (cadence is 64)")
	}
	j.Eager(EagerLaunch, "dione", "F.DAT")
	j.Eager(EagerAdopt, "dione", "F.DAT")
	j.State(0, StageDone, 1)
	j.Spec(SpecLaunch, 2, 2, "brecca")
	j.Spec(SpecWin, 2, 2, "brecca")
	j.State(2, StageDone, 2)
	j.Snapshot([]uint8{StageDone, StagePending, StageDone, StageReady})

	img, err := Replay(sink.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if img.Workflow != "demo" || img.NStages != 4 || img.SpecHash != ([32]byte{9}) {
		t.Errorf("header fields wrong: %+v", img)
	}
	if img.Torn {
		t.Error("clean journal reported torn")
	}
	if img.Done() != 2 {
		t.Errorf("Done() = %d, want 2", img.Done())
	}
	want := []uint8{StageDone, StagePending, StageDone, StageReady}
	for i, st := range want {
		if img.States[i] != st {
			t.Errorf("state[%d] = %d, want %d", i, img.States[i], st)
		}
	}
	if img.Home[2] != "brecca" {
		t.Errorf("Home[2] = %q, want brecca (the speculation winner)", img.Home[2])
	}
	if img.Records != 9 {
		t.Errorf("Records = %d, want 9", img.Records)
	}
	c := o.Snapshot().Counters
	if c["wf.journal.append.total"] != 9 {
		t.Errorf("wf.journal.append.total = %d, want 9", c["wf.journal.append.total"])
	}
	if c["wf.journal.sync.total"] == 0 || c["wf.journal.bytes"] == 0 {
		t.Errorf("sync/bytes counters not advanced: %v", c)
	}
	if c["wf.journal.snapshot.total"] != 1 {
		t.Errorf("wf.journal.snapshot.total = %d, want 1", c["wf.journal.snapshot.total"])
	}
}

func TestJournalSnapshotCadence(t *testing.T) {
	v := simclock.NewVirtualDefault()
	j := NewJournal(&MemSink{}, v)
	j.SnapshotEvery = 3
	j.Header("demo", [32]byte{}, 8, CouplingSequential)
	due := 0
	for k := 0; k < 9; k++ {
		if j.State(k%8, StageRunning, 1) {
			due++
			j.Snapshot(make([]uint8, 8))
		}
	}
	if due != 3 {
		t.Errorf("snapshot came due %d times over 9 state records at cadence 3, want 3", due)
	}
}

func TestJournalSyncEveryBatches(t *testing.T) {
	v := simclock.NewVirtualDefault()
	sink := &MemSink{}
	j := NewJournal(sink, v)
	j.SyncEvery = 100 // nothing below forces a barrier
	j.Header("demo", [32]byte{}, 2, CouplingSequential)
	persisted := len(sink.Bytes()) // header is a barrier: always synced
	j.State(0, StageRunning, 1)
	j.Eager(EagerLaunch, "dione", "F.DAT")
	if got := len(sink.Bytes()); got != persisted {
		t.Errorf("non-barrier records synced eagerly: %d > %d persisted bytes", got, persisted)
	}
	if sink.Buffered() == 0 {
		t.Error("no bytes buffered")
	}
	// Done records are barriers regardless of SyncEvery.
	j.State(0, StageDone, 1)
	if sink.Buffered() != 0 {
		t.Errorf("%d bytes still buffered after a done barrier", sink.Buffered())
	}
}

func TestMemSinkCrashTearsTail(t *testing.T) {
	v := simclock.NewVirtualDefault()
	sink := &MemSink{}
	j := NewJournal(sink, v)
	j.SyncEvery = 100
	j.Header("demo", [32]byte{}, 2, CouplingSequential)
	j.State(0, StageRunning, 1)
	j.State(1, StageRunning, 1) // both buffered, unsynced

	data := sink.Crash(5) // 5 bytes of the first buffered frame "reach disk"
	img, err := Replay(data)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Torn {
		t.Error("torn tail not reported")
	}
	if img.States[0] != StagePending || img.States[1] != StagePending {
		t.Errorf("unsynced records were replayed: %v", img.States)
	}
	if img.Records != 1 {
		t.Errorf("Records = %d, want just the header", img.Records)
	}
}

func TestJournalStopsAfterSinkError(t *testing.T) {
	v := simclock.NewVirtualDefault()
	j := NewJournal(failSink{}, v)
	j.Header("demo", [32]byte{}, 1, CouplingSequential)
	if j.Err() == nil {
		t.Fatal("sink failure not reported")
	}
	j.State(0, StageDone, 1) // must not panic, must stay failed
	if j.Err() == nil {
		t.Error("error cleared by later append")
	}
}

type failSink struct{}

func (failSink) Write([]byte) (int, error) { return 0, errors.New("disk gone") }
func (failSink) Sync() error               { return errors.New("disk gone") }

func TestNilJournalIsSafe(t *testing.T) {
	var j *Journal
	j.Header("demo", [32]byte{}, 1, CouplingSequential)
	if j.State(0, StageDone, 1) {
		t.Error("nil journal reported a snapshot due")
	}
	j.Eager(EagerLaunch, "m", "p")
	j.Spec(SpecLaunch, 0, 2, "m")
	j.Snapshot(nil)
	j.SetObserver(nil)
	j.disable()
	if j.Err() != nil {
		t.Error("nil journal reported an error")
	}
}

func TestReplayErrors(t *testing.T) {
	stateRec := func(stage uint32, st uint8) []byte {
		return frameBytes(encodeRec(&record{kind: recState, stage: stage, state: st, attempt: 1}))
	}
	hdr := frameBytes(encodeRec(headerRec("demo", 2)))

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"no header first", stateRec(0, StageDone)},
		{"stage out of range", append(append([]byte(nil), hdr...), stateRec(7, StageDone)...)},
		{"unknown state", append(append([]byte(nil), hdr...), stateRec(0, 99)...)},
		{"snapshot length mismatch", append(append([]byte(nil), hdr...),
			frameBytes(encodeRec(&record{kind: recSnapshot, states: []uint8{0}}))...)},
		{"spec stage out of range", append(append([]byte(nil), hdr...),
			frameBytes(encodeRec(&record{kind: recSpec, op: SpecWin, stage: 9, attempt: 2, machine: "m"}))...)},
		{"conflicting second header", append(append([]byte(nil), hdr...),
			frameBytes(encodeRec(headerRec("other", 2)))...)},
		{"future format", frameBytes(encodeRec(&record{kind: recHeader, format: 99, workflow: "demo",
			nstages: 1, coupling: 0}))},
		{"giant header", frameBytes(encodeRec(&record{kind: recHeader, format: journalFormat,
			workflow: "demo", nstages: MaxStages + 1, coupling: 0}))},
	}
	for _, tc := range cases {
		if _, err := Replay(tc.data); err == nil {
			t.Errorf("%s: Replay accepted damaged journal", tc.name)
		}
	}
	if _, err := Replay(nil); !errors.Is(err, ErrNoHeader) {
		t.Errorf("empty journal: err = %v, want ErrNoHeader", err)
	}
}

func TestReplayTornVariantsStopCleanly(t *testing.T) {
	hdr := frameBytes(encodeRec(headerRec("demo", 2)))
	done := frameBytes(encodeRec(&record{kind: recState, stage: 0, state: StageDone, attempt: 1}))
	clean := append(append([]byte(nil), hdr...), done...)

	variants := map[string][]byte{
		"truncated header":  clean[:len(clean)-len(done)+4],
		"truncated payload": clean[:len(clean)-3],
		"bit flip in tail": func() []byte {
			b := append([]byte(nil), clean...)
			b[len(b)-1] ^= 0x40 // CRC mismatch on the last record
			return b
		}(),
		"garbage tail": append(append([]byte(nil), clean...), 0xde, 0xad),
	}
	for name, data := range variants {
		img, err := Replay(data)
		if err != nil {
			t.Errorf("%s: Replay returned error %v, want torn image", name, err)
			continue
		}
		if !img.Torn {
			t.Errorf("%s: torn tail not flagged", name)
		}
	}
	// The bit-flipped record must not have been applied.
	img, _ := Replay(variants["bit flip in tail"])
	if img != nil && img.States[0] == StageDone {
		t.Error("corrupt done record was replayed")
	}
	// A second session appended after a clean first one replays fine.
	resumed := append(append([]byte(nil), clean...), hdr...)
	img, err := Replay(resumed)
	if err != nil || img.Torn || img.Records != 3 {
		t.Errorf("two-session journal: img=%+v err=%v", img, err)
	}
}

func TestKillSwitchSemantics(t *testing.T) {
	var nilKill *KillSwitch
	if nilKill.at(KillDispatch) || nilKill.Killed() {
		t.Error("nil kill switch fired")
	}
	k := &KillSwitch{Point: KillDispatch, After: 3}
	if k.at(KillPreSync) {
		t.Error("fired on the wrong point")
	}
	if k.at(KillDispatch) || k.at(KillDispatch) {
		t.Error("fired before the After-th occurrence")
	}
	if !k.at(KillDispatch) {
		t.Error("did not fire on the 3rd occurrence")
	}
	if !k.Killed() {
		t.Error("Killed() false after firing")
	}
	if k.at(KillDispatch) {
		t.Error("fired twice")
	}
	// After 0 and 1 both mean the first occurrence.
	k0 := &KillSwitch{Point: KillRecord}
	if !k0.at(KillRecord) {
		t.Error("After=0 did not fire on the first occurrence")
	}
}

func TestSpecHashSensitivity(t *testing.T) {
	mk := func() *Spec {
		return &Spec{Name: "w", Components: []Component{
			{Name: "a", Machine: "brecca", Outputs: []string{"f"}, WorkHint: 2},
			{Name: "b", Machine: "dione", Inputs: []string{"f"}},
		}}
	}
	base := SpecHash(mk(), CouplingSequential)
	if SpecHash(mk(), CouplingSequential) != base {
		t.Error("hash not deterministic")
	}
	mut := mk()
	mut.Components[1].Machine = "freak"
	if SpecHash(mut, CouplingSequential) == base {
		t.Error("machine change not reflected in hash")
	}
	mut = mk()
	mut.Components[0].Outputs = []string{"g"}
	if SpecHash(mut, CouplingSequential) == base {
		t.Error("edge change not reflected in hash")
	}
	mut = mk()
	mut.Components[0].WorkHint = 3
	if SpecHash(mut, CouplingSequential) == base {
		t.Error("work hint change not reflected in hash")
	}
	if SpecHash(mk(), CouplingFiles) == base {
		t.Error("coupling change not reflected in hash")
	}
}

func TestRecordEncodeDecodeIdentity(t *testing.T) {
	recs := []*record{
		headerRec("climate", 12),
		{kind: recState, stage: 3, state: StageFailed, attempt: 2, nanos: 77},
		{kind: recEager, op: EagerDiscard, machine: "koume00", path: "X.DAT", nanos: -1},
		{kind: recSpec, op: SpecLose, stage: 1, attempt: 2, machine: "jagan"},
		{kind: recSnapshot, states: []uint8{0, 1, 2, 3, 4}, nanos: time.Hour.Nanoseconds()},
	}
	for _, rec := range recs {
		got, err := decodeRecord(encodeRec(rec))
		if err != nil {
			t.Fatalf("kind %d: %v", rec.kind, err)
		}
		if got.kind != rec.kind || got.nanos != rec.nanos || got.stage != rec.stage ||
			got.state != rec.state || got.attempt != rec.attempt || got.op != rec.op ||
			got.machine != rec.machine || got.path != rec.path ||
			got.workflow != rec.workflow || got.nstages != rec.nstages ||
			got.specHash != rec.specHash || !bytes.Equal(got.states, rec.states) {
			t.Errorf("kind %d: round trip mismatch\n got %+v\nwant %+v", rec.kind, got, *rec)
		}
	}
	if _, err := decodeRecord([]byte{42}); err == nil {
		t.Error("unknown kind decoded")
	}
	if _, err := decodeRecord(append(encodeRec(recs[1]), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
