package workflow

import (
	"bytes"
	"errors"
	"testing"

	"griddles/internal/gns"
	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/testbed"
	"griddles/internal/vfs"
)

// crashPipeSpec is a four-stage cross-machine chain with a deterministic
// terminal output: gen(brecca) -> fold(dione) -> mix(freak) -> pack(brecca),
// PIPE.OUT landing on brecca. Every byte of the terminal file is a function
// of seed only, so two runs are comparable byte for byte.
func crashPipeSpec(seed byte, payload int) *Spec {
	gen := func(n int, mut byte) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i)*7 + seed + mut
		}
		return b
	}
	stage := func(in, out string, mut byte, work float64) func(*Ctx) error {
		return func(ctx *Ctx) error {
			var data []byte
			if in != "" {
				r, err := ctx.FM.Open(in)
				if err != nil {
					return err
				}
				buf := &bytes.Buffer{}
				if _, err := buf.ReadFrom(r); err != nil {
					r.Close()
					return err
				}
				r.Close()
				data = buf.Bytes()
				for i := range data {
					data[i] += mut
				}
			} else {
				data = gen(payload, mut)
			}
			ctx.Compute(work)
			w, err := ctx.FM.Create(out)
			if err != nil {
				return err
			}
			if _, err := w.Write(data); err != nil {
				return err
			}
			return w.Close()
		}
	}
	return &Spec{Name: "pipe", Components: []Component{
		{Name: "gen", Machine: "brecca", Outputs: []string{"G.DAT"}, WorkHint: 4,
			Run: stage("", "G.DAT", 1, 4)},
		{Name: "fold", Machine: "dione", Inputs: []string{"G.DAT"}, Outputs: []string{"F.DAT"}, WorkHint: 4,
			Run: stage("G.DAT", "F.DAT", 2, 4)},
		{Name: "mix", Machine: "freak", Inputs: []string{"F.DAT"}, Outputs: []string{"M.DAT"}, WorkHint: 4,
			Run: stage("F.DAT", "M.DAT", 3, 4)},
		{Name: "pack", Machine: "brecca", Inputs: []string{"M.DAT"}, Outputs: []string{"PIPE.OUT"}, WorkHint: 4,
			Run: stage("M.DAT", "PIPE.OUT", 4, 4)},
	}}
}

// resumeEnv is one simulated world for a crash/resume round.
type resumeEnv struct {
	v    *simclock.Virtual
	grid *testbed.Grid
	gns  *gns.Store
}

func newResumeEnv() *resumeEnv {
	v := simclock.NewVirtualDefault()
	return &resumeEnv{v: v, grid: testbed.DefaultGrid(v), gns: gns.NewStore(v)}
}

// referencePipeOut runs crashPipeSpec uninterrupted and returns the terminal
// bytes — the ground truth every crash/resume round must reproduce.
func referencePipeOut(t *testing.T, seed byte, payload int) []byte {
	t.Helper()
	e := newResumeEnv()
	var out []byte
	e.v.Run(func() {
		if err := StartServices(e.v, e.grid); err != nil {
			t.Fatal(err)
		}
		r := &Runner{Grid: e.grid, GNS: e.gns}
		if _, err := r.Run(crashPipeSpec(seed, payload), CouplingSequential); err != nil {
			t.Fatal(err)
		}
		b, err := vfs.ReadFile(e.grid.Machine("brecca").RawFS(), "PIPE.OUT")
		if err != nil {
			t.Fatal(err)
		}
		out = b
	})
	return out
}

func TestResumeValidation(t *testing.T) {
	e := newResumeEnv()
	spec := crashPipeSpec(1, 1<<10)
	e.v.Run(func() {
		if err := StartServices(e.v, e.grid); err != nil {
			t.Fatal(err)
		}
		r := &Runner{Grid: e.grid, GNS: e.gns}
		if _, err := r.Resume(spec, CouplingSequential, nil); err == nil {
			t.Error("Resume accepted a nil image")
		}
		img := &RunImage{NStages: 99, States: make([]uint8, 99)}
		if _, err := r.Resume(spec, CouplingSequential, img); err == nil {
			t.Error("Resume accepted an nstages mismatch")
		}
		img = &RunImage{NStages: len(spec.Components), States: make([]uint8, len(spec.Components))}
		if _, err := r.Resume(spec, CouplingSequential, img); err == nil {
			t.Error("Resume accepted a spec hash mismatch")
		}
		img.SpecHash = SpecHash(spec, CouplingSequential)
		serial := &Runner{Grid: e.grid, GNS: e.gns, Serial: true}
		if _, err := serial.Resume(spec, CouplingSequential, img); err == nil {
			t.Error("Resume accepted the serial executor")
		}
		buffered := &Runner{Grid: e.grid, GNS: e.gns, Journal: NewJournal(&MemSink{}, e.v)}
		if _, err := buffered.Run(spec, CouplingBuffers); err == nil {
			t.Error("Run accepted a journal under buffer coupling")
		}
	})
}

// crashResumeRound kills a journaled crashPipeSpec run at kill, optionally tears
// the unsynced journal tail, resumes in the same world, and checks the
// resumed run completes with byte-identical terminal output and zero
// re-dispatch of journal-done stages.
func crashResumeRound(t *testing.T, kill *KillSwitch, syncEvery, tear int, want []byte, seed byte, payload int, mutate func(*Runner)) {
	t.Helper()
	e := newResumeEnv()
	spec := crashPipeSpec(seed, payload)
	n := len(spec.Components)
	e.v.Run(func() {
		if err := StartServices(e.v, e.grid); err != nil {
			t.Fatal(err)
		}
		sink := &MemSink{}
		j := NewJournal(sink, e.v)
		j.SyncEvery = syncEvery
		o1 := obs.New(e.v)
		r1 := &Runner{Grid: e.grid, GNS: e.gns, Journal: j, Kill: kill, Obs: o1}
		if mutate != nil {
			mutate(r1)
		}
		_, err := r1.Run(spec, CouplingSequential)
		if !errors.Is(err, ErrCoordinatorKilled) {
			t.Fatalf("killed run returned %v, want ErrCoordinatorKilled", err)
		}
		d1 := o1.Snapshot().Counters["wf.sched.dispatch.total"]

		img, rerr := Replay(sink.Crash(tear))
		if rerr != nil {
			t.Fatalf("replay: %v", rerr)
		}
		doneBefore := img.Done()
		// A real resumer truncates the journal file's torn tail before
		// appending its session; otherwise replay stops at the fragment
		// and every later record is invisible.
		sink.Truncate(img.CleanLen)

		o2 := obs.New(e.v)
		r2 := &Runner{Grid: e.grid, GNS: e.gns, Journal: NewJournal(sink, e.v), Obs: o2}
		if mutate != nil {
			mutate(r2)
		}
		if _, err := r2.Resume(spec, CouplingSequential, img); err != nil {
			t.Fatalf("resume: %v", err)
		}
		d2 := o2.Snapshot().Counters["wf.sched.dispatch.total"]
		if int(d2) != n-doneBefore {
			t.Errorf("resumed session dispatched %d stages, want %d (%d of %d proven done): done stages must not recompute",
				d2, n-doneBefore, doneBefore, n)
		}
		if d1+d2 < int64(n) {
			t.Errorf("sessions dispatched %d+%d < %d stages in total", d1, d2, n)
		}

		got, err := vfs.ReadFile(e.grid.Machine("brecca").RawFS(), "PIPE.OUT")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("terminal output differs from the uninterrupted run (%d vs %d bytes)", len(got), len(want))
		}

		// The whole file — two sessions — replays to a fully done image.
		final, err := Replay(sink.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if final.Done() != n {
			t.Errorf("final journal proves %d/%d stages done", final.Done(), n)
		}
	})
}

func TestResumeAfterDispatchKill(t *testing.T) {
	want := referencePipeOut(t, 5, 32<<10)
	for after := 1; after <= 3; after++ {
		crashResumeRound(t, &KillSwitch{Point: KillDispatch, After: after}, 1, 0, want, 5, 32<<10, nil)
	}
}

func TestResumeAfterPreSyncKill(t *testing.T) {
	// The stage finished but its done record never reached the disk: the
	// resumed coordinator must treat it as running and re-dispatch it.
	want := referencePipeOut(t, 6, 32<<10)
	crashResumeRound(t, &KillSwitch{Point: KillPreSync, After: 2}, 1, 0, want, 6, 32<<10, nil)
}

func TestResumeFromTornTail(t *testing.T) {
	// Batched syncs leave records in the buffer; the crash persists a prefix
	// of them, tearing a frame in half. Replay must stop cleanly and the
	// resumed run must still converge to identical bytes.
	want := referencePipeOut(t, 7, 32<<10)
	crashResumeRound(t, &KillSwitch{Point: KillRecord, After: 6}, 3, 5, want, 7, 32<<10, nil)
}

func TestResumeOfCompletedRunIsANoOp(t *testing.T) {
	e := newResumeEnv()
	spec := crashPipeSpec(9, 8<<10)
	e.v.Run(func() {
		if err := StartServices(e.v, e.grid); err != nil {
			t.Fatal(err)
		}
		sink := &MemSink{}
		r1 := &Runner{Grid: e.grid, GNS: e.gns, Journal: NewJournal(sink, e.v)}
		if _, err := r1.Run(spec, CouplingSequential); err != nil {
			t.Fatal(err)
		}
		img, err := Replay(sink.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		o := obs.New(e.v)
		r2 := &Runner{Grid: e.grid, GNS: e.gns, Obs: o}
		if _, err := r2.Resume(spec, CouplingSequential, img); err != nil {
			t.Fatal(err)
		}
		if d := o.Snapshot().Counters["wf.sched.dispatch.total"]; d != 0 {
			t.Errorf("resume of a completed run dispatched %d stages, want 0", d)
		}
	})
}

func TestResumeAfterEagerCopyKill(t *testing.T) {
	// The coordinator dies the instant an eager stage-in launches (gen's
	// close of G.DAT starts the copy toward fold's machine). The orphaned
	// copy drains; the resumed run — eager copies on again — converges to
	// identical bytes.
	want := referencePipeOut(t, 8, 32<<10)
	crashResumeRound(t, &KillSwitch{Point: KillEagerCopy, After: 1}, 1, 0, want, 8, 32<<10,
		func(r *Runner) { r.EagerCopy = true })
}
