package workflow

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"griddles/internal/gns"
	"griddles/internal/simclock"
	"griddles/internal/testbed"
)

// pipeSpec builds a producer -> filter -> consumer pipeline. Each stage
// computes `work` units spread over `steps` steps and streams `stepBytes`
// per step.
func pipeSpec(machines [3]string, work float64, steps, stepBytes int) *Spec {
	writeStage := func(out string) func(*Ctx) error {
		return func(ctx *Ctx) error {
			w, err := ctx.FM.Create(out)
			if err != nil {
				return err
			}
			block := make([]byte, stepBytes)
			for i := 0; i < steps; i++ {
				ctx.Compute(work / float64(steps))
				if _, err := w.Write(block); err != nil {
					return err
				}
			}
			return w.Close()
		}
	}
	filterStage := func(in, out string) func(*Ctx) error {
		return func(ctx *Ctx) error {
			r, err := ctx.FM.Open(in)
			if err != nil {
				return err
			}
			defer r.Close()
			w, err := ctx.FM.Create(out)
			if err != nil {
				return err
			}
			buf := make([]byte, stepBytes)
			for {
				n, rerr := io.ReadFull(r, buf)
				if n > 0 {
					ctx.Compute(work / float64(steps))
					if _, werr := w.Write(buf[:n]); werr != nil {
						return werr
					}
				}
				if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
					break
				}
				if rerr != nil {
					return rerr
				}
			}
			return w.Close()
		}
	}
	readStage := func(in string) func(*Ctx) error {
		return func(ctx *Ctx) error {
			r, err := ctx.FM.Open(in)
			if err != nil {
				return err
			}
			defer r.Close()
			buf := make([]byte, stepBytes)
			total := 0
			for {
				n, rerr := r.Read(buf)
				total += n
				if n > 0 {
					ctx.Compute(work / float64(steps) * float64(n) / float64(stepBytes))
				}
				if rerr == io.EOF {
					break
				}
				if rerr != nil {
					return rerr
				}
			}
			if total != steps*stepBytes {
				return fmt.Errorf("consumer read %d bytes, want %d", total, steps*stepBytes)
			}
			return nil
		}
	}
	return &Spec{
		Name: "pipe",
		Components: []Component{
			{Name: "producer", Machine: machines[0], Outputs: []string{"stage1.dat"}, Run: writeStage("stage1.dat")},
			{Name: "filter", Machine: machines[1], Inputs: []string{"stage1.dat"}, Outputs: []string{"stage2.dat"}, Run: filterStage("stage1.dat", "stage2.dat")},
			{Name: "consumer", Machine: machines[2], Inputs: []string{"stage2.dat"}, Run: readStage("stage2.dat")},
		},
	}
}

// runPipeSized executes the pipeline under a coupling with a given per-step
// payload and returns the report.
func runPipeSized(t *testing.T, machines [3]string, coupling Coupling, stepBytes int) *Report {
	t.Helper()
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	runner := &Runner{Grid: grid, GNS: gns.NewStore(v)}
	var report *Report
	v.Run(func() {
		if err := StartServices(v, grid); err != nil {
			t.Fatal(err)
		}
		var err error
		report, err = runner.Run(pipeSpec(machines, 30, 30, stepBytes), coupling)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	return report
}

// runPipe is runPipeSized with the paper's 4096-byte blocks.
func runPipe(t *testing.T, machines [3]string, coupling Coupling) *Report {
	t.Helper()
	return runPipeSized(t, machines, coupling, 4096)
}

func TestSequentialOrdering(t *testing.T) {
	rep := runPipe(t, [3]string{"brecca", "brecca", "brecca"}, CouplingSequential)
	p, _ := rep.Timing("producer")
	f, _ := rep.Timing("filter")
	c, _ := rep.Timing("consumer")
	if !(p.Finish <= f.Start && f.Finish <= c.Start) {
		t.Errorf("stages overlap in sequential mode:\n%s", rep)
	}
	// Total is roughly the sum of the three stages' compute (90 units at
	// speed 1.0) plus file IO.
	if rep.Total < 90*time.Second || rep.Total > 100*time.Second {
		t.Errorf("sequential total = %v, want ~90s", rep.Total)
	}
}

func TestBuffersOverlapStages(t *testing.T) {
	rep := runPipe(t, [3]string{"brecca", "vpac27", "dione"}, CouplingBuffers)
	p, _ := rep.Timing("producer")
	c, _ := rep.Timing("consumer")
	if c.Start > p.Start+time.Second {
		t.Errorf("consumer did not start with producer:\n%s", rep)
	}
	// On three machines the three 30-unit stages run genuinely in
	// parallel; the slowest stage is dione's consumer (30/0.584 = 51s), so
	// the total must be far below the 160s-ish sequential sum.
	seq := runPipe(t, [3]string{"brecca", "vpac27", "dione"}, CouplingSequential)
	if rep.Total >= seq.Total {
		t.Errorf("buffers (%v) not faster than sequential (%v) across machines", rep.Total, seq.Total)
	}
}

func TestConcurrentFilesWaitForMarkers(t *testing.T) {
	rep := runPipe(t, [3]string{"brecca", "brecca", "brecca"}, CouplingFiles)
	p, _ := rep.Timing("producer")
	f, _ := rep.Timing("filter")
	// All started together...
	if f.Start > time.Second {
		t.Errorf("filter start = %v, want ~0 (concurrent launch)", f.Start)
	}
	// ...but the filter's work happens only after the producer closes: its
	// finish must come after the producer's.
	if f.Finish <= p.Finish {
		t.Errorf("filter finished before producer:\n%s", rep)
	}
}

func TestConcurrentFilesSlowerThanSequentialOnOneBox(t *testing.T) {
	seq := runPipe(t, [3]string{"jagan", "jagan", "jagan"}, CouplingSequential)
	files := runPipe(t, [3]string{"jagan", "jagan", "jagan"}, CouplingFiles)
	if files.Total <= seq.Total {
		t.Errorf("concurrent files (%v) not slower than sequential (%v): polling should cost",
			files.Total, seq.Total)
	}
}

func TestBuffersBeatConcurrentFilesOnOneBox(t *testing.T) {
	// With a data-heavy stream (the paper's coupling files are ~20 MB),
	// buffers skip the disk round trips that files mode pays twice per
	// intermediate. On a machine with a small multiprogramming penalty
	// (freak) that saving dominates, as in the paper's Table 4.
	one := [3]string{"freak", "freak", "freak"}
	files := runPipeSized(t, one, CouplingFiles, 1<<20)
	bufs := runPipeSized(t, one, CouplingBuffers, 1<<20)
	if bufs.Total >= files.Total {
		t.Errorf("buffers (%v) not faster than concurrent files (%v)", bufs.Total, files.Total)
	}
}

func TestCrossMachineStagingDelivers(t *testing.T) {
	// Sequential across machines exercises the ModeCopy staging path.
	rep := runPipe(t, [3]string{"brecca", "dione", "freak"}, CouplingSequential)
	if rep.Total <= 0 {
		t.Error("no time elapsed")
	}
	c, _ := rep.Timing("consumer")
	if c.Finish != rep.Total {
		t.Errorf("consumer finish %v != total %v", c.Finish, rep.Total)
	}
}

func TestTopoOrder(t *testing.T) {
	spec := &Spec{Name: "t", Components: []Component{
		{Name: "c", Inputs: []string{"b.out"}},
		{Name: "a", Outputs: []string{"a.out"}},
		{Name: "b", Inputs: []string{"a.out"}, Outputs: []string{"b.out"}},
	}}
	order, err := spec.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, idx := range order {
		pos[spec.Components[idx].Name] = i
	}
	if !(pos["a"] < pos["b"] && pos["b"] < pos["c"]) {
		t.Errorf("order = %v", order)
	}
}

func TestCycleDetection(t *testing.T) {
	spec := &Spec{Name: "cycle", Components: []Component{
		{Name: "a", Inputs: []string{"b.out"}, Outputs: []string{"a.out"}},
		{Name: "b", Inputs: []string{"a.out"}, Outputs: []string{"b.out"}},
	}}
	if _, err := spec.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestDuplicateProducerRejected(t *testing.T) {
	spec := &Spec{Name: "dup", Components: []Component{
		{Name: "a", Outputs: []string{"x"}},
		{Name: "b", Outputs: []string{"x"}},
	}}
	if _, err := spec.producers(); err == nil {
		t.Error("duplicate producer not rejected")
	}
}

func TestDOTOutput(t *testing.T) {
	spec := pipeSpec([3]string{"brecca", "vpac27", "dione"}, 1, 1, 1)
	dot := spec.DOT()
	for _, want := range []string{"digraph", "producer", "filter", "consumer", "stage1.dat", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestBroadcastFanOut(t *testing.T) {
	// One producer, two consumers of the same file via buffers: the
	// broadcast path (paper §3.1 "writer broadcasting to a number of
	// readers").
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	runner := &Runner{Grid: grid, GNS: gns.NewStore(v)}
	consumed := make([]int, 2)
	mkConsumer := func(i int) func(*Ctx) error {
		return func(ctx *Ctx) error {
			r, err := ctx.FM.Open("feed.dat")
			if err != nil {
				return err
			}
			defer r.Close()
			n, err := io.Copy(io.Discard, r)
			consumed[i] = int(n)
			return err
		}
	}
	spec := &Spec{Name: "bcast", Components: []Component{
		{Name: "source", Machine: "brecca", Outputs: []string{"feed.dat"}, Run: func(ctx *Ctx) error {
			w, err := ctx.FM.Create("feed.dat")
			if err != nil {
				return err
			}
			w.Write(make([]byte, 100_000))
			return w.Close()
		}},
		{Name: "sink1", Machine: "dione", Inputs: []string{"feed.dat"}, Run: mkConsumer(0)},
		{Name: "sink2", Machine: "vpac27", Inputs: []string{"feed.dat"}, Run: mkConsumer(1)},
	}}
	v.Run(func() {
		if err := StartServices(v, grid); err != nil {
			t.Fatal(err)
		}
		if _, err := runner.Run(spec, CouplingBuffers); err != nil {
			t.Fatal(err)
		}
	})
	if consumed[0] != 100_000 || consumed[1] != 100_000 {
		t.Errorf("broadcast consumed = %v", consumed)
	}
}

func TestReportFormatting(t *testing.T) {
	rep := &Report{
		Workflow: "w", Coupling: CouplingBuffers, Total: 99*time.Minute + 17*time.Second,
		Timings: []Timing{{Name: "x", Machine: "jagan", Finish: time.Hour}},
	}
	s := rep.String()
	if !strings.Contains(s, "01:39:17") || !strings.Contains(s, "jagan") {
		t.Errorf("report:\n%s", s)
	}
	if FormatDuration(61*time.Second) != "00:01:01" {
		t.Error("FormatDuration wrong")
	}
	if _, ok := rep.Timing("nope"); ok {
		t.Error("missing timing reported ok")
	}
}

func TestCouplingString(t *testing.T) {
	if CouplingSequential.String() == "" || CouplingFiles.String() == "" ||
		CouplingBuffers.String() == "" || CouplingObjects.String() == "" ||
		Coupling(9).String() == "" {
		t.Error("coupling names empty")
	}
}

// TestObjectsCouplingDelivers runs the pipeline with every intermediate file
// as a whole object on the object-store service: components co-launch, each
// reader's open blocks until the upstream PUT commits (object visibility is
// the close signal — no markers), and every byte arrives.
func TestObjectsCouplingDelivers(t *testing.T) {
	rep := runPipe(t, [3]string{"brecca", "vpac27", "dione"}, CouplingObjects)
	p, _ := rep.Timing("producer")
	f, _ := rep.Timing("filter")
	c, _ := rep.Timing("consumer")
	// Co-scheduled launch, like buffers...
	if f.Start > time.Second || c.Start > time.Second {
		t.Errorf("stages not co-launched:\n%s", rep)
	}
	// ...but the data dependency holds: a stage's output object commits at
	// its close, so each downstream finish follows its upstream's.
	if f.Finish <= p.Finish || c.Finish <= f.Finish {
		t.Errorf("object coupling broke stage ordering:\n%s", rep)
	}
	// The consumer's internal byte-count check passed (Run returned nil),
	// so the objects delivered every byte.
	if rep.Total <= 0 {
		t.Error("no time elapsed")
	}
}

func TestComponentErrorPropagates(t *testing.T) {
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	runner := &Runner{Grid: grid, GNS: gns.NewStore(v)}
	spec := &Spec{Name: "broken", Components: []Component{
		{Name: "boom", Machine: "brecca", Run: func(*Ctx) error {
			return fmt.Errorf("synthetic failure")
		}},
	}}
	v.Run(func() {
		if err := StartServices(v, grid); err != nil {
			t.Fatal(err)
		}
		for _, coupling := range []Coupling{CouplingSequential, CouplingBuffers} {
			_, err := runner.Run(spec, coupling)
			if err == nil || !strings.Contains(err.Error(), "synthetic failure") {
				t.Errorf("[%s] err = %v", coupling, err)
			}
			if err != nil && !strings.Contains(err.Error(), "boom") {
				t.Errorf("[%s] error does not name the component: %v", coupling, err)
			}
		}
	})
}

func TestSequentialStopsAfterFailure(t *testing.T) {
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	runner := &Runner{Grid: grid, GNS: gns.NewStore(v)}
	ran := []string{}
	spec := &Spec{Name: "stop", Components: []Component{
		{Name: "a", Machine: "brecca", Outputs: []string{"x"}, Run: func(ctx *Ctx) error {
			ran = append(ran, "a")
			return fmt.Errorf("a failed")
		}},
		{Name: "b", Machine: "brecca", Inputs: []string{"x"}, Run: func(ctx *Ctx) error {
			ran = append(ran, "b")
			return nil
		}},
	}}
	v.Run(func() {
		if err := StartServices(v, grid); err != nil {
			t.Fatal(err)
		}
		if _, err := runner.Run(spec, CouplingSequential); err == nil {
			t.Fatal("no error")
		}
	})
	if len(ran) != 1 || ran[0] != "a" {
		t.Errorf("ran = %v, want only a", ran)
	}
}

func TestMarksRecorded(t *testing.T) {
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	runner := &Runner{Grid: grid, GNS: gns.NewStore(v)}
	spec := &Spec{Name: "marks", Components: []Component{
		{Name: "c", Machine: "brecca", Run: func(ctx *Ctx) error {
			ctx.Clock.Sleep(5 * time.Second)
			ctx.Mark("halfway")
			ctx.Clock.Sleep(5 * time.Second)
			return nil
		}},
	}}
	var rep *Report
	v.Run(func() {
		if err := StartServices(v, grid); err != nil {
			t.Fatal(err)
		}
		var err error
		rep, err = runner.Run(spec, CouplingSequential)
		if err != nil {
			t.Fatal(err)
		}
	})
	m, ok := rep.Mark("c/halfway")
	if !ok || m != 5*time.Second {
		t.Errorf("mark = %v %v", m, ok)
	}
	if _, ok := rep.Mark("c/missing"); ok {
		t.Error("phantom mark")
	}
}

func TestConfigureIsIncrementalGNSOnly(t *testing.T) {
	// Configure must write only GNS entries — running it twice with
	// different couplings leaves the latest binding in force (the paper's
	// "reconfigure by editing the GNS" property).
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	store := gns.NewStore(v)
	runner := &Runner{Grid: grid, GNS: store}
	spec := pipeSpec([3]string{"brecca", "vpac27", "dione"}, 1, 1, 64)
	if err := runner.Configure(spec, CouplingBuffers); err != nil {
		t.Fatal(err)
	}
	m, _ := store.Resolve("brecca", "stage1.dat")
	if m.Mode != gns.ModeBuffer {
		t.Fatalf("after buffers configure: %v", m.Mode)
	}
	if err := runner.Configure(spec, CouplingSequential); err != nil {
		t.Fatal(err)
	}
	m, _ = store.Resolve("brecca", "stage1.dat")
	if m.Mode != gns.ModeLocal {
		t.Fatalf("after sequential configure: %v", m.Mode)
	}
	m, _ = store.Resolve("vpac27", "stage1.dat")
	if m.Mode != gns.ModeCopy || m.RemoteHost != "brecca"+FileServicePort {
		t.Fatalf("consumer mapping: %+v", m)
	}
}
