package workflow

import (
	"fmt"
	"io"
	"testing"
	"time"

	"griddles/internal/gns"
	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/testbed"
	"griddles/internal/vfs"
)

// tailSpec is a two-stage cross-machine pipeline whose producer keeps
// computing for `tail` units after closing its output — the window an
// eager copy hides the transfer in.
func tailSpec(payload int, tail float64, afterClose func(*Ctx)) *Spec {
	return &Spec{Name: "tail", Components: []Component{
		{Name: "producer", Machine: "brecca", Outputs: []string{"out.dat"}, WorkHint: tail,
			Run: func(ctx *Ctx) error {
				w, err := ctx.FM.Create("out.dat")
				if err != nil {
					return err
				}
				if _, err := w.Write(make([]byte, payload)); err != nil {
					return err
				}
				if err := w.Close(); err != nil {
					return err
				}
				if afterClose != nil {
					afterClose(ctx)
				}
				ctx.Compute(tail)
				return nil
			}},
		{Name: "consumer", Machine: "dione", Inputs: []string{"out.dat"}, WorkHint: 1,
			Run: func(ctx *Ctx) error {
				r, err := ctx.FM.Open("out.dat")
				if err != nil {
					return err
				}
				defer r.Close()
				ctx.Mark("input-open")
				n, err := r.Read(make([]byte, payload+1))
				if err != nil && err != io.EOF {
					return err
				}
				if n != payload {
					return fmt.Errorf("consumer read %d bytes, want %d", n, payload)
				}
				return nil
			}},
	}}
}

// runTail executes spec with a shared observer, returning the report and
// final counter snapshot.
func runTail(t *testing.T, spec *Spec, mutate func(*Runner)) (*Report, map[string]int64) {
	t.Helper()
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	o := obs.New(v)
	runner := &Runner{Grid: grid, GNS: gns.NewStore(v), Obs: o}
	if mutate != nil {
		mutate(runner)
	}
	var report *Report
	v.Run(func() {
		if err := StartServices(v, grid); err != nil {
			t.Fatal(err)
		}
		var err error
		report, err = runner.Run(spec, CouplingSequential)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	return report, o.Snapshot().Counters
}

func TestEagerCopyAdoptedAndFaster(t *testing.T) {
	const payload = 2 << 20
	off, cOff := runTail(t, tailSpec(payload, 30, nil), nil)
	on, cOn := runTail(t, tailSpec(payload, 30, nil), func(r *Runner) { r.EagerCopy = true })
	if cOff["wf.eagercopy.start.total"] != 0 {
		t.Error("eager copy started while disabled")
	}
	if cOn["wf.eagercopy.adopt.total"] != 1 || cOn["wf.eagercopy.start.total"] != 1 {
		t.Errorf("eager counters = start %d adopt %d, want 1/1",
			cOn["wf.eagercopy.start.total"], cOn["wf.eagercopy.adopt.total"])
	}
	if cOn["wf.eagercopy.bytes"] != payload {
		t.Errorf("wf.eagercopy.bytes = %d, want %d", cOn["wf.eagercopy.bytes"], payload)
	}
	// The copy runs inside the producer's 30-unit compute tail instead of
	// serializing after it, so the whole run gets faster.
	if on.Total >= off.Total {
		t.Errorf("eager copy (%v) not faster than open-time copy (%v)", on.Total, off.Total)
	}
	// The adopted bytes still count as staged-in traffic.
	if cOn[obs.Key("fm.prestage.adopt.total", "machine", "dione")] != 1 {
		t.Error("FM did not record the prestage adoption")
	}
}

func TestEagerCopyDiscardedAfterRemap(t *testing.T) {
	const payload = 256 << 10
	var runner *Runner
	// After closing out.dat the producer rewrites the consumer's mapping —
	// same coordinates, but Set bumps the version. The eager copy was
	// started under the old version, so the consumer's open must discard
	// it and fall back to the ordinary stage-in.
	remap := func(ctx *Ctx) {
		runner.GNS.Set("dione", "out.dat", gns.Mapping{
			Mode:       gns.ModeCopy,
			RemoteHost: "brecca" + FileServicePort,
			RemotePath: "out.dat",
		})
	}
	_, c := runTail(t, tailSpec(payload, 10, remap), func(r *Runner) {
		r.EagerCopy = true
		runner = r
	})
	if c["wf.eagercopy.discard.total"] != 1 {
		t.Errorf("wf.eagercopy.discard.total = %d, want 1", c["wf.eagercopy.discard.total"])
	}
	if c["wf.eagercopy.adopt.total"] != 0 {
		t.Error("stale eager copy adopted")
	}
	if c[obs.Key("fm.prestage.adopt.total", "machine", "dione")] != 0 {
		t.Error("FM adopted a discarded copy")
	}
}

func TestEagerCopyOffByDefaultIsByteIdenticalTiming(t *testing.T) {
	// The default runner must behave exactly as the pre-scheduler executor
	// on a cross-machine chain — same virtual-time total, no eager events.
	a, c := runTail(t, tailSpec(1<<20, 10, nil), nil)
	b, _ := runTail(t, tailSpec(1<<20, 10, nil), func(r *Runner) { r.Serial = true })
	if a.Total != b.Total {
		t.Errorf("default DAG total %v != serial total %v", a.Total, b.Total)
	}
	for k := range c {
		if len(k) > 3 && k[:3] == "wf." && k != "wf.stage.wall_ms" {
			if k[:9] == "wf.eagerc" {
				t.Errorf("eager metric %s present at defaults", k)
			}
		}
	}
}

// TestEagerCopyDiscardMidFlightCleansStalePath remaps while the eager copy
// is still in flight — no producer tail, multi-MB payload over the slow
// cross-site link — and moves the consumer's local path. The open must park
// until the copy settles before discarding it (so the fallback stage-in
// never races the copy goroutine), land the fallback at the new path, and
// remove the stale bytes the eager copy left at the old one.
func TestEagerCopyDiscardMidFlightCleansStalePath(t *testing.T) {
	const payload = 2 << 20
	var runner *Runner
	remap := func(ctx *Ctx) {
		runner.GNS.Set("dione", "out.dat", gns.Mapping{
			Mode:       gns.ModeCopy,
			RemoteHost: "brecca" + FileServicePort,
			RemotePath: "out.dat",
			LocalPath:  "staged/out.dat",
		})
	}
	_, c := runTail(t, tailSpec(payload, 0, remap), func(r *Runner) {
		r.EagerCopy = true
		runner = r
	})
	if c["wf.eagercopy.discard.total"] != 1 {
		t.Errorf("wf.eagercopy.discard.total = %d, want 1", c["wf.eagercopy.discard.total"])
	}
	if c["wf.eagercopy.adopt.total"] != 0 {
		t.Error("stale eager copy adopted")
	}
	fs := runner.Grid.Machine("dione").FS()
	if vfs.Exists(fs, "out.dat") {
		t.Error("discarded eager copy left stale bytes at the old local path")
	}
	if !vfs.Exists(fs, "staged/out.dat") {
		t.Error("fallback stage-in did not land at the remapped local path")
	}
}

// TestEagerTrackerDiscardWaitsForInFlightCopy pins the rule that even a
// claim refused for a mapping mismatch waits for the copy to settle: the
// caller's fallback CopyIn may truncate the very file the copy goroutine is
// still writing.
func TestEagerTrackerDiscardWaitsForInFlightCopy(t *testing.T) {
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	r := &Runner{Grid: grid, GNS: gns.NewStore(v)}
	tr := newEagerTracker(r, tailSpec(1024, 0, nil))
	started := gns.Mapping{Mode: gns.ModeCopy, RemoteHost: "brecca" + FileServicePort, Version: 1}
	e := &eagerEntry{mapping: started, done: simclock.NewEvent(v)}
	tr.entries[eagerKey{"dione", "out.dat"}] = e
	v.Run(func() {
		v.Go("eager-copy", func() {
			v.Sleep(5 * time.Second)
			e.done.Set()
		})
		remapped := started
		remapped.Version = 2
		if _, ok := tr.Claim("dione", "out.dat", remapped); ok {
			t.Error("remapped claim adopted")
		}
		if !e.done.IsSet() {
			t.Error("claim refused while the eager copy was still in flight")
		}
	})
}

func TestEagerTrackerClaimOnce(t *testing.T) {
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	r := &Runner{Grid: grid, GNS: gns.NewStore(v)}
	spec := tailSpec(1024, 0, nil)
	tr := newEagerTracker(r, spec)
	mapping := gns.Mapping{Mode: gns.ModeCopy, RemoteHost: "brecca" + FileServicePort, Version: 7}
	e := &eagerEntry{mapping: mapping, done: simclock.NewEvent(v), bytes: 1024}
	e.done.Set()
	tr.entries[eagerKey{"dione", "out.dat"}] = e
	v.Run(func() {
		if n, ok := tr.Claim("dione", "out.dat", mapping); !ok || n != 1024 {
			t.Errorf("first claim = %d/%v, want 1024/true", n, ok)
		}
		if _, ok := tr.Claim("dione", "out.dat", mapping); ok {
			t.Error("second claim of the same entry succeeded")
		}
	})
}

func TestEagerTrackerFailedCopyRefusesClaim(t *testing.T) {
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	r := &Runner{Grid: grid, GNS: gns.NewStore(v)}
	tr := newEagerTracker(r, tailSpec(1024, 0, nil))
	mapping := gns.Mapping{Mode: gns.ModeCopy, RemoteHost: "brecca" + FileServicePort}
	e := &eagerEntry{mapping: mapping, done: simclock.NewEvent(v), failed: true}
	e.done.Set()
	tr.entries[eagerKey{"dione", "out.dat"}] = e
	v.Run(func() {
		if _, ok := tr.Claim("dione", "out.dat", mapping); ok {
			t.Error("failed copy adopted")
		}
	})
}
