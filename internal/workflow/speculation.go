package workflow

import (
	"sort"
	"time"

	"griddles/internal/gns"
	"griddles/internal/obs"
)

// Stage-level speculative re-execution, in the MapReduce backup-task
// style: when a running stage has been in flight for longer than a
// percentile-based straggler threshold and an idle machine exists, the
// scheduler launches a second attempt of the same component there. The
// two attempts race; the first to finish commits its outputs through a
// first-writer-wins GNS claim (gns.Store.SetIfAbsent) and the loser is
// interrupted at its next IO and its partial outputs discarded.
//
// The scheme assumes what MapReduce assumes: stage bodies are
// deterministic functions of their inputs, so either attempt's outputs
// are byte-identical and committing whichever lands first is safe.
//
// Everything a speculative attempt touches on its host machine lives
// under the ".wfspec" suffix — staged input copies and outputs alike — so
// the attempt can never collide with plain-named files already on that
// machine (eagerly staged inputs for other stages, a consumer's own
// working files), and discarding a loser is a plain unlink.

// specInterval, specFactor, specMinSamples apply the Runner's defaults.
func (r *Runner) specInterval() time.Duration {
	if r.SpecInterval > 0 {
		return r.SpecInterval
	}
	return 5 * time.Second
}

func (r *Runner) specFactor() float64 {
	if r.SpecFactor > 0 {
		return r.SpecFactor
	}
	return 1.5
}

func (r *Runner) specMinSamples() int {
	if r.SpecMinSamples > 0 {
		return r.SpecMinSamples
	}
	return 3
}

// monitor is the speculation scan loop, one goroutine per DAG run. It
// wakes every SpecInterval (or on any scheduler broadcast) and launches a
// speculative attempt for each straggling primary with an idle machine
// available. It exits when the dispatcher loop finishes.
func (d *dagRun) monitor() {
	r := d.runner
	interval := r.specInterval()
	d.mu.Lock()
	defer d.mu.Unlock()
	for !d.finished {
		d.cond.WaitTimeout(interval)
		if d.finished {
			return
		}
		if d.failed || d.kill.Killed() {
			continue // nothing new is launched; wait for the loop to drain
		}
		threshold, ok := d.thresholdLocked()
		if !ok {
			continue
		}
		now := d.clock.Now()
		for i, st := range d.state {
			if st != stRunning || d.attempts[i] != 1 {
				continue
			}
			if now.Sub(d.startAt[i]) < threshold {
				continue
			}
			m := d.idleMachineLocked(i)
			if m == "" {
				continue
			}
			d.speculateLocked(i, m)
			if d.kill.Killed() {
				break // the speculation-launch kill point fired
			}
		}
	}
}

// thresholdLocked computes the straggler threshold: SpecFactor × the p75
// of completed stage durations, once SpecMinSamples stages have finished.
func (d *dagRun) thresholdLocked() (time.Duration, bool) {
	r := d.runner
	if len(d.durations) < r.specMinSamples() {
		return 0, false
	}
	sorted := append([]time.Duration(nil), d.durations...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	p75 := sorted[(len(sorted)*3)/4]
	return time.Duration(float64(p75) * r.specFactor()), true
}

// idleMachineLocked picks the machine for a speculative attempt of stage
// i: not the stage's own machine, nothing currently running on it, fastest
// SpeedFactor first with the name as a deterministic tie-break. Empty
// string means no machine is idle.
func (d *dagRun) idleMachineLocked(i int) string {
	comp := d.spec.Components[i]
	best := ""
	bestSpeed := 0.0
	for name, m := range d.runner.Grid.Machines() {
		if name == comp.Machine || d.running[name] > 0 {
			continue
		}
		speed := m.Spec().SpeedFactor
		if best == "" || speed > bestSpeed || (speed == bestSpeed && name < best) {
			best, bestSpeed = name, speed
		}
	}
	return best
}

// speculateLocked launches attempt 2 of stage i on machine m: pre-stages
// the attempt's GNS view (inputs from each producer's home machine,
// outputs local under the spec namespace), saving every entry it
// overwrites for rollback, then starts the goroutine.
func (d *dagRun) speculateLocked(i int, m string) {
	comp := d.spec.Components[i]
	r := d.runner
	att := &attempt{stage: i, n: 2, machine: m}
	d.presetLocked(att)
	d.attempts[i] = 2
	d.specAtt[i] = att
	d.running[m]++
	r.Obs.Counter("wf.spec.launch.total").Inc()
	r.Obs.Gauge("wf.sched.running").Set(int64(d.inflightLocked()))
	r.Obs.Emit("wf.spec.launch", m,
		obs.KV("workflow", d.spec.Name),
		obs.KV("component", comp.Name),
		obs.KV("primary", comp.Machine),
		obs.KV("running_for_ms", d.clock.Now().Sub(d.startAt[i])/time.Millisecond))
	d.journal.Spec(SpecLaunch, i, 2, m) // the speculation kill point fires in here
	d.launchLocked(att, "wf-spec-"+comp.Name)
}

// presetLocked writes the GNS entries a speculative attempt on att.machine
// needs, remembering what it overwrites in att.saved:
//
//   - each input is staged from its producer's home machine (or from the
//     component's configured machine for workflow sources), landing under
//     the spec namespace; an input whose authoritative copy already lives
//     on att.machine is read in place;
//   - each output is written locally under the spec namespace, so a losing
//     attempt's partials never shadow the primary's files.
func (d *dagRun) presetLocked(att *attempt) {
	comp := d.spec.Components[att.stage]
	r := d.runner
	set := func(path string, m gns.Mapping) {
		prev, had := r.GNS.Lookup(att.machine, path)
		att.saved = append(att.saved, savedEntry{machine: att.machine, path: path, mapping: prev, had: had})
		r.GNS.Set(att.machine, path, m)
	}
	for _, f := range comp.Inputs {
		src := comp.Machine // workflow sources are pre-placed on the stage's machine
		srcPath := f
		if p, ok := d.prod[f]; ok && p != att.stage {
			src = d.home[p]
			// A producer whose speculation won on a foreign machine keeps
			// its output under the spec namespace there.
			srcPath = attemptPath(f, attemptOn(d, p, src))
		}
		if src == att.machine {
			set(f, gns.Mapping{Mode: gns.ModeLocal, LocalPath: srcPath})
		} else {
			set(f, gns.Mapping{
				Mode:       gns.ModeCopy,
				RemoteHost: src + FileServicePort,
				RemotePath: srcPath,
				LocalPath:  f + specSuffix,
			})
		}
	}
	for _, f := range comp.Outputs {
		if d.prod[f] != att.stage {
			continue
		}
		set(f, gns.Mapping{Mode: gns.ModeLocal, LocalPath: f + specSuffix})
	}
}

// attemptOn reports which attempt number produced stage p's outputs on
// machine m: 2 when the outputs live on a speculation winner's machine
// (the spec namespace), 1 on the component's own machine (plain names).
func attemptOn(d *dagRun, p int, m string) int {
	if m != d.spec.Components[p].Machine {
		return 2
	}
	return 1
}
