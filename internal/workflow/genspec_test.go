package workflow

import (
	"errors"
	"fmt"
	"testing"

	"griddles/internal/gns"
	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/testbed"
)

// layeredSpec generates a layers×width DAG: every stage in layer l+1
// depends on two stages of layer l (its column and the next, wrapping), so
// the graph is connected but sparse — 2·width·(layers-1) edges, not a
// bipartite explosion. Stages round-robin over the testbed's machines and
// have no-op bodies: the test exercises the coordinator and journal at
// scale, not the grid's disks.
func layeredSpec(layers, width int) *Spec {
	machines := []string{"brecca", "dione", "freak", "koume00", "vpac27", "bouscat", "jagan"}
	noop := func(*Ctx) error { return nil }
	out := func(l, s int) string { return fmt.Sprintf("L%d.S%d", l, s) }
	spec := &Spec{Name: fmt.Sprintf("layered-%dx%d", layers, width)}
	for l := 0; l < layers; l++ {
		for s := 0; s < width; s++ {
			c := Component{
				Name:    fmt.Sprintf("st-%d-%d", l, s),
				Machine: machines[(l*width+s)%len(machines)],
				Run:     noop,
			}
			if l > 0 {
				c.Inputs = []string{out(l-1, s), out(l-1, (s+1)%width)}
			}
			if l < layers-1 {
				c.Outputs = []string{out(l, s)}
			}
			spec.Components = append(spec.Components, c)
		}
	}
	return spec
}

// TestGiantDAGJournaledKillResume pushes a 10,000-stage DAG through a
// mid-flight coordinator kill and a journaled resume: the journal replay
// must scale, the resumed session must re-dispatch exactly the stages the
// journal cannot prove done, and the whole DAG must converge.
func TestGiantDAGJournaledKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-stage DAG; skipped under -short")
	}
	const layers, width = 100, 100
	n := layers * width
	spec := layeredSpec(layers, width)

	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	store := gns.NewStore(v)
	sink := &MemSink{}
	v.Run(func() {
		if err := StartServices(v, grid); err != nil {
			t.Fatal(err)
		}
		j := NewJournal(sink, v)
		j.SnapshotEvery = 512 // keep the journal compact at this scale
		o1 := obs.New(v)
		r1 := &Runner{
			Grid: grid, GNS: store, Obs: o1, MaxPerMachine: 64,
			Journal: j, Kill: &KillSwitch{Point: KillDispatch, After: 4000},
		}
		if _, err := r1.Run(spec, CouplingSequential); !errors.Is(err, ErrCoordinatorKilled) {
			t.Fatalf("killed run returned %v, want ErrCoordinatorKilled", err)
		}
		if d := o1.Snapshot().Counters["wf.sched.dispatch.total"]; d != 4000 {
			t.Fatalf("kill switch fired after %d dispatches, want 4000", d)
		}

		img, err := Replay(sink.Crash(0))
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		sink.Truncate(img.CleanLen)
		if img.Done() == 0 || img.Done() >= n {
			t.Fatalf("journal proves %d/%d stages done at the kill, want a strict mid-point", img.Done(), n)
		}

		j2 := NewJournal(sink, v)
		j2.SnapshotEvery = 512
		o2 := obs.New(v)
		r2 := &Runner{Grid: grid, GNS: store, Obs: o2, MaxPerMachine: 64, Journal: j2}
		if _, err := r2.Resume(spec, CouplingSequential, img); err != nil {
			t.Fatalf("resume: %v", err)
		}
		if d := o2.Snapshot().Counters["wf.sched.dispatch.total"]; int(d) != n-img.Done() {
			t.Errorf("resumed session dispatched %d stages, want %d: journal-done stages must not recompute",
				d, n-img.Done())
		}

		final, err := Replay(sink.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if final.Done() != n {
			t.Errorf("final journal proves %d/%d stages done", final.Done(), n)
		}
	})
}
