package workflow

import (
	"sync"

	"griddles/internal/gns"
	"griddles/internal/gridftp"
	"griddles/internal/obs"
	"griddles/internal/simclock"
)

// Eager stage-in: under the DAG scheduler, a consumer stage's input copy
// normally runs inside the consumer's own slot, serialised after all the
// upstream compute. With Runner.EagerCopy the tracker below starts the
// copy the moment the producer closes the file — the FM's CloseNotify hook
// fires after stage-out and markers have settled — so the transfer overlaps
// whatever the producer (and any other stage) still computes. When the
// consumer is finally dispatched, its FM's mode-2 open claims the eager
// copy through the core.Prestager interface instead of re-copying; a claim
// of an in-flight copy parks (clock-aware) only for the un-hidden tail.
//
// Coherence: each copy records the GNS mapping it was started under. A
// claim whose open-time mapping differs in version or coordinates — the
// GNS was edited between close and open — is refused and counted as a
// discard, and the open falls back to the ordinary stage-in. A failed
// eager copy (network fault mid-flight) likewise refuses the claim; the
// fallback CopyIn truncates the partial file, so output bytes are
// identical with and without eager copies.

// eagerKey identifies one staged destination: the consumer's machine and
// the open path.
type eagerKey struct {
	machine string
	path    string
}

// eagerEntry is one eager copy, in flight or settled.
type eagerEntry struct {
	mapping gns.Mapping     // mapping the copy was started under
	done    *simclock.Event // fires when the copy settles
	bytes   int64
	failed  bool
}

// eagerTracker starts eager copies on produce notifications and serves
// claims from consumer FMs. It implements core.Prestager.
type eagerTracker struct {
	runner *Runner
	spec   *Spec
	clock  simclock.Clock
	cons   map[string][]int

	mu      sync.Mutex
	entries map[eagerKey]*eagerEntry
	wg      *simclock.WaitGroup
}

func newEagerTracker(r *Runner, spec *Spec) *eagerTracker {
	clock := r.Grid.Clock()
	return &eagerTracker{
		runner:  r,
		spec:    spec,
		clock:   clock,
		cons:    spec.consumers(),
		entries: make(map[eagerKey]*eagerEntry),
		wg:      simclock.NewWaitGroup(clock),
	}
}

// produced handles a producer-side close of path on producerMachine: it
// starts one copy toward every remote consumer machine whose mapping
// stages from that producer.
func (t *eagerTracker) produced(producerMachine, path string) {
	for _, ci := range t.cons[path] {
		cm := t.spec.Components[ci].Machine
		if cm != producerMachine {
			t.start(cm, path, producerMachine)
		}
	}
}

// start launches the eager copy of path toward consumerMachine, unless one
// is already running or the consumer's mapping doesn't stage from the
// producer (e.g. buffer coupling, or a GNS edit pointed it elsewhere).
func (t *eagerTracker) start(consumerMachine, path, producerMachine string) {
	mapping, err := t.runner.GNS.Resolve(consumerMachine, path)
	if err != nil || mapping.Mode != gns.ModeCopy || mapping.RemoteHost != producerMachine+FileServicePort {
		return
	}
	key := eagerKey{consumerMachine, path}
	t.mu.Lock()
	if _, dup := t.entries[key]; dup {
		t.mu.Unlock()
		return
	}
	e := &eagerEntry{mapping: mapping, done: simclock.NewEvent(t.clock)}
	t.entries[key] = e
	t.wg.Add(1)
	t.mu.Unlock()

	r := t.runner
	r.Journal.Eager(EagerLaunch, consumerMachine, path)
	r.Obs.Counter("wf.eagercopy.start.total").Inc()
	r.Obs.Emit("wf.eagercopy.start", consumerMachine,
		obs.KV("workflow", t.spec.Name),
		obs.KV("path", path),
		obs.KV("from", mapping.RemoteHost))
	machine := r.Grid.Machine(consumerMachine)
	rp := mapping.RemotePath
	if rp == "" {
		rp = path
	}
	lp := mapping.LocalPath
	if lp == "" {
		lp = path
	}
	streams := r.CopyStreams
	if streams <= 0 {
		streams = 1
	}
	t.clock.Go("eagercopy-"+consumerMachine+"-"+path, func() {
		defer t.wg.Done()
		c := gridftp.NewClient(machine, mapping.RemoteHost, t.clock)
		defer c.Close()
		n, err := c.CopyIn(rp, machine.FS(), lp, streams)
		if err != nil {
			e.failed = true
			r.Obs.Counter("wf.eagercopy.fail.total").Inc()
			r.Obs.Emit("wf.eagercopy.fail", consumerMachine,
				obs.KV("path", path), obs.KV("error", err.Error()))
		} else {
			e.bytes = n
			r.Obs.Counter("wf.eagercopy.bytes").Add(n)
		}
		e.done.Set()
	})
}

// Claim implements core.Prestager: it adopts the eager copy of
// (machine, path) if one was started under the same mapping, waiting for
// an in-flight copy to settle. Each entry is claimable once.
func (t *eagerTracker) Claim(machine, path string, mapping gns.Mapping) (int64, bool) {
	key := eagerKey{machine, path}
	t.mu.Lock()
	e, ok := t.entries[key]
	if ok {
		delete(t.entries, key)
	}
	t.mu.Unlock()
	if !ok {
		return 0, false
	}
	// Settle before deciding, adopt or not: a refused claim makes the FM
	// fall back to an open-time CopyIn over the mapping's local path, and
	// that truncate-and-write must never race a still-running eager copy
	// goroutine writing the same file.
	e.done.Wait()
	r := t.runner
	if e.mapping.Version != mapping.Version ||
		e.mapping.RemoteHost != mapping.RemoteHost ||
		e.mapping.RemotePath != mapping.RemotePath ||
		e.mapping.LocalPath != mapping.LocalPath {
		// The GNS was remapped between close and open: the staged bytes may
		// be from the wrong source or in the wrong place. Discard.
		t.removeStale(machine, path, e.mapping, mapping)
		r.Journal.Eager(EagerDiscard, machine, path)
		r.Obs.Counter("wf.eagercopy.discard.total").Inc()
		r.Obs.Emit("wf.eagercopy.discard", machine,
			obs.KV("path", path),
			obs.KV("copied_version", e.mapping.Version),
			obs.KV("open_version", mapping.Version))
		return 0, false
	}
	if e.failed {
		return 0, false
	}
	r.Journal.Eager(EagerAdopt, machine, path)
	r.Obs.Counter("wf.eagercopy.adopt.total").Inc()
	r.Obs.Emit("wf.eagercopy.adopt", machine,
		obs.KV("path", path), obs.KV("bytes", e.bytes))
	return e.bytes, true
}

// removeStale deletes the bytes a discarded eager copy left at its old
// mapping's local path. Skipped when the open-time mapping stages to the
// same path — the fallback CopyIn truncates it anyway. Called only after
// the copy has settled, so nothing re-creates the file afterwards.
func (t *eagerTracker) removeStale(machine, path string, copied, open gns.Mapping) {
	old := copied.LocalPath
	if old == "" {
		old = path
	}
	cur := open.LocalPath
	if cur == "" {
		cur = path
	}
	if old == cur {
		return
	}
	t.runner.Grid.Machine(machine).FS().Remove(old)
}

// drain blocks until every launched copy has settled, claimed or not, so a
// finished Run leaves no transfer running on the grid.
func (t *eagerTracker) drain() { t.wg.Wait() }
