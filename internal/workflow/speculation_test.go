package workflow

import (
	"bytes"
	"testing"
	"time"

	"griddles/internal/gns"
	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/testbed"
	"griddles/internal/vfs"
)

// stragglerSpec is engineered so exactly one speculation fires at a known
// virtual time. Three sample stages run back to back on brecca (5 s each
// under MaxPerMachine=1, finishing at t=5/10/15) to feed the duration
// percentile. The "lag" stage lands on jagan (SpeedFactor 0.089), where
// Compute(5) takes ~56 s — far past the 7.5 s threshold the samples
// establish — and writes OUT.DAT. A downstream "final" stage on dione
// consumes OUT.DAT and writes FINAL.DAT, so the test proves the consumer
// was re-pointed at the speculation winner's copy.
func stragglerSpec(seed byte, payload int) *Spec {
	outBytes := func() []byte {
		b := make([]byte, payload)
		for i := range b {
			b[i] = byte(i)*3 + seed
		}
		return b
	}
	sample := func(ctx *Ctx) error { ctx.Compute(5); return nil }
	return &Spec{Name: "spectest", Components: []Component{
		{Name: "s1", Machine: "brecca", WorkHint: 5, Run: sample},
		{Name: "s2", Machine: "brecca", WorkHint: 5, Run: sample},
		{Name: "s3", Machine: "brecca", WorkHint: 5, Run: sample},
		{Name: "lag", Machine: "jagan", Outputs: []string{"OUT.DAT"}, WorkHint: 5,
			Run: func(ctx *Ctx) error {
				ctx.Compute(5)
				w, err := ctx.FM.Create("OUT.DAT")
				if err != nil {
					return err
				}
				if _, err := w.Write(outBytes()); err != nil {
					return err
				}
				return w.Close()
			}},
		{Name: "final", Machine: "dione", Inputs: []string{"OUT.DAT"}, Outputs: []string{"FINAL.DAT"}, WorkHint: 2,
			Run: func(ctx *Ctx) error {
				r, err := ctx.FM.Open("OUT.DAT")
				if err != nil {
					return err
				}
				buf := &bytes.Buffer{}
				if _, err := buf.ReadFrom(r); err != nil {
					r.Close()
					return err
				}
				r.Close()
				data := buf.Bytes()
				for i := range data {
					data[i]++
				}
				ctx.Compute(2)
				w, err := ctx.FM.Create("FINAL.DAT")
				if err != nil {
					return err
				}
				if _, err := w.Write(data); err != nil {
					return err
				}
				return w.Close()
			}},
	}}
}

// wantFinal is FINAL.DAT's ground truth: lag's deterministic bytes, +1.
func wantFinal(seed byte, payload int) []byte {
	b := make([]byte, payload)
	for i := range b {
		b[i] = byte(i)*3 + seed + 1
	}
	return b
}

// runSpecObs runs spec on a fresh grid with an observer attached and
// returns the report plus the counter snapshot taken after the whole
// simulation drains (so a tardy losing primary's discard is counted).
func runSpecObs(t *testing.T, spec *Spec, mutate func(*Runner)) (*Report, map[string]int64, *testbed.Grid) {
	t.Helper()
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	o := obs.New(v)
	runner := &Runner{Grid: grid, GNS: gns.NewStore(v), Obs: o}
	if mutate != nil {
		mutate(runner)
	}
	var report *Report
	v.Run(func() {
		if err := StartServices(v, grid); err != nil {
			t.Fatal(err)
		}
		var err error
		report, err = runner.Run(spec, CouplingSequential)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		// Run returns the moment the DAG is done; a losing primary may still
		// be computing on its remote machine until its next IO refuses. Let
		// the simulated world drain so its discard is observable.
		v.Sleep(5 * time.Minute)
	})
	return report, o.Snapshot().Counters, grid
}

func TestSpeculationRescuesStraggler(t *testing.T) {
	const seed, payload = 3, 64 << 10
	spec := func() *Spec { return stragglerSpec(seed, payload) }

	base, _, _ := runSpecObs(t, spec(), nil)
	rep, c, grid := runSpecObs(t, spec(), func(r *Runner) {
		r.Speculate = true
		r.SpecInterval = 7 * time.Second
	})

	if c["wf.spec.launch.total"] != 1 {
		t.Errorf("speculation launched %d attempts, want exactly 1", c["wf.spec.launch.total"])
	}
	if c["wf.spec.win.total"] != 1 {
		t.Errorf("speculation won %d races, want 1", c["wf.spec.win.total"])
	}
	if c["wf.spec.lose.total"] != 1 {
		t.Errorf("recorded %d losing attempts, want 1 (the interrupted primary)", c["wf.spec.lose.total"])
	}
	if rep.Total >= base.Total {
		t.Errorf("speculation did not speed up the straggler: %v with vs %v without", rep.Total, base.Total)
	}

	// The consumer was re-pointed at the winner: FINAL.DAT is byte-exact.
	got, err := vfs.ReadFile(grid.Machine("dione").RawFS(), "FINAL.DAT")
	if err != nil {
		t.Fatalf("FINAL.DAT: %v", err)
	}
	if !bytes.Equal(got, wantFinal(seed, payload)) {
		t.Errorf("FINAL.DAT differs from the deterministic ground truth (%d bytes)", len(got))
	}

	// The winner's output lives under the speculation namespace on brecca;
	// the interrupted primary's plain-named partial was discarded on jagan.
	if _, err := vfs.ReadFile(grid.Machine("brecca").RawFS(), "OUT.DAT"+specSuffix); err != nil {
		t.Errorf("winner's output missing on brecca: %v", err)
	}
	if _, err := vfs.ReadFile(grid.Machine("jagan").RawFS(), "OUT.DAT"); err == nil {
		t.Error("losing primary's OUT.DAT survived on jagan, want discarded")
	}
}

func TestSpeculationFastPathLaunchesNothing(t *testing.T) {
	// A DAG with no straggler never trips the percentile threshold: the
	// monitor runs but launches zero speculative attempts.
	_, c, _ := runSpecObs(t, diamondSpec(10, 32<<10), func(r *Runner) {
		r.Speculate = true
	})
	if c["wf.spec.launch.total"] != 0 {
		t.Errorf("fast path launched %d speculative attempts, want 0", c["wf.spec.launch.total"])
	}
	if c["wf.spec.win.total"] != 0 || c["wf.spec.lose.total"] != 0 {
		t.Errorf("fast path recorded wins/losses (%d/%d), want none",
			c["wf.spec.win.total"], c["wf.spec.lose.total"])
	}
}

func TestSpeculationJournalsRace(t *testing.T) {
	// With a journal attached, the race leaves SpecLaunch + SpecWin records
	// and the replayed image carries the winner as the stage's home.
	const seed, payload = 4, 16 << 10
	v := simclock.NewVirtualDefault()
	grid := testbed.DefaultGrid(v)
	sink := &MemSink{}
	r := &Runner{
		Grid: grid, GNS: gns.NewStore(v),
		Journal: NewJournal(sink, v), Speculate: true,
		SpecInterval: 7 * time.Second,
	}
	spec := stragglerSpec(seed, payload)
	v.Run(func() {
		if err := StartServices(v, grid); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(spec, CouplingSequential); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	img, err := Replay(sink.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if img.Done() != len(spec.Components) {
		t.Errorf("journal proves %d/%d stages done", img.Done(), len(spec.Components))
	}
	lag := 3 // index of the straggler component
	if h, ok := img.Home[lag]; !ok || h == spec.Components[lag].Machine {
		t.Errorf("journal home for the straggler = %q, %v; want the speculation winner", h, ok)
	}
	launches, wins := countSpecOps(t, sink.Bytes())
	if launches != 1 || wins != 1 {
		t.Errorf("journal holds %d SpecLaunch / %d SpecWin records, want 1/1", launches, wins)
	}
}

// countSpecOps scans raw journal bytes for speculation records.
func countSpecOps(t *testing.T, data []byte) (launches, wins int) {
	t.Helper()
	off := 0
	for off+8 <= len(data) {
		n := int(uint32(data[off])<<24 | uint32(data[off+1])<<16 | uint32(data[off+2])<<8 | uint32(data[off+3]))
		if off+8+n > len(data) {
			break
		}
		rec, err := decodeRecord(data[off+8 : off+8+n])
		if err != nil {
			break
		}
		if rec.kind == recSpec {
			switch rec.op {
			case SpecLaunch:
				launches++
			case SpecWin:
				wins++
			}
		}
		off += 8 + n
	}
	return launches, wins
}

// stagedStragglerSpec moves the straggler's input to a third machine: gen
// on freak produces IN.DAT, three samples on brecca feed the percentile,
// lag on jagan folds IN.DAT into OUT.DAT, final on dione packs FINAL.DAT.
// A speculative attempt of lag must stage IN.DAT from gen's home across
// the network into its ".wfspec" namespace.
func stagedStragglerSpec(seed byte, payload int) *Spec {
	sample := func(ctx *Ctx) error { ctx.Compute(5); return nil }
	pipe := func(in, out string, mut byte, work float64) func(*Ctx) error {
		return func(ctx *Ctx) error {
			var data []byte
			if in == "" {
				data = make([]byte, payload)
				for i := range data {
					data[i] = byte(i)*3 + seed
				}
			} else {
				r, err := ctx.FM.Open(in)
				if err != nil {
					return err
				}
				buf := &bytes.Buffer{}
				if _, err := buf.ReadFrom(r); err != nil {
					r.Close()
					return err
				}
				r.Close()
				data = buf.Bytes()
				for i := range data {
					data[i] += mut
				}
			}
			ctx.Compute(work)
			w, err := ctx.FM.Create(out)
			if err != nil {
				return err
			}
			if _, err := w.Write(data); err != nil {
				return err
			}
			return w.Close()
		}
	}
	return &Spec{Name: "spectest-staged", Components: []Component{
		{Name: "gen", Machine: "freak", Outputs: []string{"IN.DAT"}, WorkHint: 5,
			Run: pipe("", "IN.DAT", 0, 5)},
		{Name: "s1", Machine: "brecca", WorkHint: 5, Run: sample},
		{Name: "s2", Machine: "brecca", WorkHint: 5, Run: sample},
		{Name: "s3", Machine: "brecca", WorkHint: 5, Run: sample},
		{Name: "lag", Machine: "jagan", Inputs: []string{"IN.DAT"}, Outputs: []string{"OUT.DAT"}, WorkHint: 5,
			Run: pipe("IN.DAT", "OUT.DAT", 1, 5)},
		{Name: "final", Machine: "dione", Inputs: []string{"OUT.DAT"}, Outputs: []string{"FINAL.DAT"}, WorkHint: 2,
			Run: pipe("OUT.DAT", "FINAL.DAT", 1, 2)},
	}}
}

func TestSpeculationStagesInputFromProducerHome(t *testing.T) {
	// The winning speculative attempt ran on a machine that holds neither
	// the stage's input nor its consumers: it staged IN.DAT from gen's home
	// into its namespace, computed there, and the consumer was re-pointed.
	const seed, payload = 11, 32 << 10
	spec := func() *Spec { return stagedStragglerSpec(seed, payload) }

	base, _, baseGrid := runSpecObs(t, spec(), nil)
	rep, c, grid := runSpecObs(t, spec(), func(r *Runner) {
		r.Speculate = true
		r.SpecInterval = 7 * time.Second
	})
	if c["wf.spec.launch.total"] != 1 || c["wf.spec.win.total"] != 1 {
		t.Fatalf("launch/win = %d/%d, want 1/1",
			c["wf.spec.launch.total"], c["wf.spec.win.total"])
	}
	if rep.Total >= base.Total {
		t.Errorf("speculation did not speed up the staged straggler: %v with vs %v without", rep.Total, base.Total)
	}
	want, err := vfs.ReadFile(baseGrid.Machine("dione").RawFS(), "FINAL.DAT")
	if err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(grid.Machine("dione").RawFS(), "FINAL.DAT")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("FINAL.DAT differs between speculated and plain runs (%d vs %d bytes)", len(got), len(want))
	}
	// The winner is deterministic — brecca is the fastest idle machine at
	// the launch scan. Its staged input and its winning output both live
	// under the speculation namespace there, never under plain names.
	if _, err := vfs.ReadFile(grid.Machine("brecca").RawFS(), "OUT.DAT"+specSuffix); err != nil {
		t.Errorf("winner brecca is missing the namespaced OUT.DAT: %v", err)
	}
	if _, err := vfs.ReadFile(grid.Machine("brecca").RawFS(), "IN.DAT"+specSuffix); err != nil {
		t.Errorf("winner brecca is missing the staged namespaced input: %v", err)
	}
	if _, err := vfs.ReadFile(grid.Machine("brecca").RawFS(), "OUT.DAT"); err == nil {
		t.Error("winner wrote a plain-named OUT.DAT outside the speculation namespace")
	}
}

func TestSpeculationLoserIsDiscardedWhenPrimaryWins(t *testing.T) {
	// A speculative attempt that loses the race: the primary is slow enough
	// to trip the threshold but finishes before the backup. The backup's
	// interrupt fires at its next IO, its partial outputs are removed and
	// the GNS entries its pre-staging overwrote are restored.
	const payload = 16 << 10
	sample := func(ctx *Ctx) error { ctx.Compute(5); return nil }
	spec := &Spec{Name: "spectest-lose", Components: []Component{
		{Name: "s1", Machine: "brecca", WorkHint: 5, Run: sample},
		{Name: "s2", Machine: "brecca", WorkHint: 5, Run: sample},
		{Name: "s3", Machine: "brecca", WorkHint: 5, Run: sample},
		// bouscat (0.245): 4 units is ~16.3s — a straggler at the t=15 scan
		// (the monitor wakes on s3's finish broadcast; threshold p75*1.5 =
		// 7.5s) but done before a brecca backup launched at t=15 reaches
		// its Create at ~19s.
		{Name: "lag", Machine: "bouscat", Outputs: []string{"OUT.DAT"}, WorkHint: 4,
			Run: func(ctx *Ctx) error {
				ctx.Compute(4)
				w, err := ctx.FM.Create("OUT.DAT")
				if err != nil {
					return err
				}
				b := make([]byte, payload)
				for i := range b {
					b[i] = byte(i) * 9
				}
				if _, err := w.Write(b); err != nil {
					return err
				}
				return w.Close()
			}},
	}}
	_, c, grid := runSpecObs(t, spec, func(r *Runner) {
		r.Speculate = true
		r.SpecInterval = 7 * time.Second
	})
	if c["wf.spec.launch.total"] != 1 {
		t.Fatalf("launched %d speculative attempts, want 1", c["wf.spec.launch.total"])
	}
	if c["wf.spec.win.total"] != 0 {
		t.Errorf("backup won %d races, want 0 (the primary was first)", c["wf.spec.win.total"])
	}
	if c["wf.spec.lose.total"] != 1 {
		t.Errorf("recorded %d losing attempts, want 1 (the backup)", c["wf.spec.lose.total"])
	}
	// The primary's plain-named output survives; the backup's namespaced
	// partial was discarded from the machine it ran on.
	if _, err := vfs.ReadFile(grid.Machine("bouscat").RawFS(), "OUT.DAT"); err != nil {
		t.Errorf("primary's OUT.DAT missing on bouscat: %v", err)
	}
	for _, m := range []string{"brecca", "dione", "freak", "koume00", "vpac27", "jagan"} {
		if _, err := vfs.ReadFile(grid.Machine(m).RawFS(), "OUT.DAT"+specSuffix); err == nil {
			t.Errorf("losing backup's namespaced OUT.DAT survived on %s", m)
		}
	}
}
