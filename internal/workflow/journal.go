package workflow

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"griddles/internal/obs"
	"griddles/internal/simclock"
	"griddles/internal/wire"
)

// The coordinator journal: an append-only, CRC-framed log of scheduler
// transitions, in the stateio/logio style. Each record is framed as
//
//	u32 payload length | u32 CRC-32 (IEEE) of the payload | payload
//
// and the payload is a kind byte followed by wire-encoded fields. A run
// starts with a header record carrying the workflow's spec hash; stage
// state changes, eager-copy activity and speculation decisions follow; a
// snapshot record of the full per-stage state vector is interleaved every
// SnapshotEvery state records so replay cost is O(tail), not O(history).
//
// Durability contract: a record is recoverable only once the sink's Sync
// has returned. Replay treats any trailing bytes that do not form a whole,
// CRC-clean frame as a torn tail — the crash happened mid-append — and
// stops cleanly there; a torn or corrupt record is never applied. Corrupt
// bytes *before* the last sync horizon (a flipped bit under the CRC, an
// impossible stage index) are a hard replay error instead: that is storage
// damage, not a crash artifact.

// Journal record kinds.
const (
	recHeader   = 1
	recState    = 2
	recEager    = 3
	recSpec     = 4
	recSnapshot = 5
)

// journalFormat is the on-disk format version written in header records.
const journalFormat = 1

// Stage states as journaled and replayed (RunImage.States). The scheduler's
// in-memory lifecycle maps onto these; failed is journal-only (the
// in-memory scheduler folds failures into done + error).
const (
	StagePending uint8 = iota
	StageReady
	StageRunning
	StageDone
	StageFailed
)

// Eager-copy journal ops (the PR 5 eager stage-in lifecycle).
const (
	EagerLaunch uint8 = iota + 1
	EagerAdopt
	EagerDiscard
)

// Speculation journal ops.
const (
	SpecLaunch uint8 = iota + 1
	SpecWin
	SpecLose
)

// MaxStages bounds the per-run stage count a journal may declare; it
// protects replay from allocating for an absurd header in a damaged file.
const MaxStages = 1 << 20

// Sink is where the journal appends. *os.File satisfies it; MemSink is the
// in-memory test double with crash semantics.
type Sink interface {
	Write(p []byte) (int, error)
	Sync() error
}

// record is one journal entry, all kinds folded into one struct so the
// encode/decode pair round-trips every field (fuzzed by
// FuzzJournalRoundTrip).
type record struct {
	kind uint8

	// recHeader
	format   uint32
	workflow string
	specHash [32]byte
	nstages  uint32
	coupling uint8

	// recState / recSpec
	stage   uint32
	state   uint8
	attempt uint32

	// recEager / recSpec
	op      uint8
	machine string
	path    string

	// recSnapshot
	states []uint8

	// all kinds: virtual-clock timestamp
	nanos int64
}

// encode appends the record payload (kind byte first) to e.
func (rec *record) encode(e *wire.Encoder) {
	e.U8(rec.kind)
	e.I64(rec.nanos)
	switch rec.kind {
	case recHeader:
		e.U32(rec.format)
		e.String(rec.workflow)
		e.Bytes32(rec.specHash[:])
		e.U32(rec.nstages)
		e.U8(rec.coupling)
	case recState:
		e.U32(rec.stage)
		e.U8(rec.state)
		e.U32(rec.attempt)
	case recEager:
		e.U8(rec.op)
		e.String(rec.machine)
		e.String(rec.path)
	case recSpec:
		e.U8(rec.op)
		e.U32(rec.stage)
		e.U32(rec.attempt)
		e.String(rec.machine)
	case recSnapshot:
		e.Bytes32(rec.states)
	}
}

// decodeRecord reads one record payload.
func decodeRecord(payload []byte) (record, error) {
	d := wire.NewDecoder(payload)
	var rec record
	rec.kind = d.U8()
	rec.nanos = d.I64()
	switch rec.kind {
	case recHeader:
		rec.format = d.U32()
		rec.workflow = d.String()
		h := d.Bytes32()
		if d.Err() == nil && len(h) != len(rec.specHash) {
			return rec, fmt.Errorf("workflow: journal header hash is %d bytes, want %d", len(h), len(rec.specHash))
		}
		copy(rec.specHash[:], h)
		rec.nstages = d.U32()
		rec.coupling = d.U8()
	case recState:
		rec.stage = d.U32()
		rec.state = d.U8()
		rec.attempt = d.U32()
	case recEager:
		rec.op = d.U8()
		rec.machine = d.String()
		rec.path = d.String()
	case recSpec:
		rec.op = d.U8()
		rec.stage = d.U32()
		rec.attempt = d.U32()
		rec.machine = d.String()
	case recSnapshot:
		rec.states = append([]uint8(nil), d.Bytes32()...)
	default:
		return rec, fmt.Errorf("workflow: unknown journal record kind %d", rec.kind)
	}
	if err := d.Err(); err != nil {
		return rec, err
	}
	if d.Remaining() != 0 {
		return rec, fmt.Errorf("workflow: %d trailing bytes in journal record", d.Remaining())
	}
	return rec, nil
}

// Journal is the append side. All methods are nil-receiver safe, so the
// scheduler journals unconditionally and a nil Runner.Journal costs nothing
// — the journal-off run stays byte-identical to the historical executor.
type Journal struct {
	// SyncEvery syncs the sink every N appends (default 1: every record is
	// durable before the scheduler acts on it). Larger values trade a
	// bounded replay gap for fewer syncs.
	SyncEvery int
	// SnapshotEvery interleaves a full state-vector snapshot every N state
	// records (default 64).
	SnapshotEvery int

	clock simclock.Clock
	obs   *obs.Observer
	kill  *KillSwitch

	mu        sync.Mutex
	sink      Sink
	err       error
	disabled  bool
	pending   int // appends since last sync
	sinceSnap int // state records since last snapshot
}

// NewJournal returns a Journal appending to sink.
func NewJournal(sink Sink, clock simclock.Clock) *Journal {
	return &Journal{clock: clock, sink: sink}
}

// SetObserver routes wf.journal.* metrics to o.
func (j *Journal) SetObserver(o *obs.Observer) {
	if j == nil {
		return
	}
	j.obs = o
}

// Err reports the first sink failure, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Header appends the run header. Called once per coordinator session —
// both a fresh Run and a Resume append one, so a journal file reads as a
// sequence of sessions over one run.
func (j *Journal) Header(workflow string, specHash [32]byte, nstages int, coupling Coupling) {
	if j == nil {
		return
	}
	j.append(&record{
		kind: recHeader, format: journalFormat, workflow: workflow,
		specHash: specHash, nstages: uint32(nstages), coupling: uint8(coupling),
	}, true)
}

// State appends a stage state transition and reports whether a snapshot is
// due (the scheduler answers by calling Snapshot with its state vector —
// it owns the vector, the journal only paces the cadence).
func (j *Journal) State(stage int, state uint8, attempt int) bool {
	if j == nil {
		return false
	}
	j.append(&record{kind: recState, stage: uint32(stage), state: state, attempt: uint32(attempt)},
		state == StageDone || state == StageFailed)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sinceSnap++
	return !j.disabled && j.err == nil && j.sinceSnap >= j.snapshotEvery()
}

// Eager appends an eager-copy lifecycle record.
func (j *Journal) Eager(op uint8, machine, path string) {
	if j == nil {
		return
	}
	j.append(&record{kind: recEager, op: op, machine: machine, path: path}, false)
	if op == EagerLaunch {
		j.killAt(KillEagerCopy)
	}
}

// Spec appends a speculation lifecycle record.
func (j *Journal) Spec(op uint8, stage, attempt int, machine string) {
	if j == nil {
		return
	}
	j.append(&record{kind: recSpec, op: op, stage: uint32(stage), attempt: uint32(attempt), machine: machine}, true)
	if op == SpecLaunch {
		j.killAt(KillSpeculation)
	}
}

// Snapshot appends a full state-vector snapshot and resets the cadence.
func (j *Journal) Snapshot(states []uint8) {
	if j == nil {
		return
	}
	j.append(&record{kind: recSnapshot, states: states}, true)
	j.mu.Lock()
	j.sinceSnap = 0
	j.mu.Unlock()
	if j.obs != nil {
		j.obs.Counter("wf.journal.snapshot.total").Inc()
	}
}

func (j *Journal) snapshotEvery() int {
	if j.SnapshotEvery > 0 {
		return j.SnapshotEvery
	}
	return 64
}

func (j *Journal) syncEvery() int {
	if j.SyncEvery > 0 {
		return j.SyncEvery
	}
	return 1
}

// append frames and writes one record. A record that must be recoverable
// before the scheduler proceeds (header, done/failed, speculation commit)
// passes barrier=true and forces a sync regardless of SyncEvery — unless
// the pre-sync kill point fires first, which is exactly the crash window
// the chaos matrix pins: the record is in the buffer, not on disk.
func (j *Journal) append(rec *record, barrier bool) {
	rec.nanos = j.clock.Now().UnixNano()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.disabled || j.err != nil {
		return
	}
	e := wire.NewEncoder()
	rec.encode(e)
	payload := e.Bytes()
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := j.sink.Write(hdr[:]); err != nil {
		j.err = err
		return
	}
	if _, err := j.sink.Write(payload); err != nil {
		j.err = err
		return
	}
	j.pending++
	if j.obs != nil {
		j.obs.Counter("wf.journal.append.total").Inc()
		j.obs.Counter("wf.journal.bytes").Add(int64(len(payload)) + 8)
	}
	if j.kill.at(KillRecord) {
		j.disabled = true
		return
	}
	if rec.kind == recState && (rec.state == StageDone || rec.state == StageFailed) && j.kill.at(KillPreSync) {
		// The crash window between a stage finishing and its done record
		// reaching the disk: the resumed coordinator must re-dispatch it.
		j.disabled = true
		return
	}
	if barrier || j.pending >= j.syncEvery() {
		if err := j.sink.Sync(); err != nil {
			j.err = err
			return
		}
		j.pending = 0
		if j.obs != nil {
			j.obs.Counter("wf.journal.sync.total").Inc()
		}
	}
}

// killAt forwards a named kill point check and disables the journal when it
// fires ("the coordinator died": nothing is appended afterwards).
func (j *Journal) killAt(point string) {
	if j == nil || !j.kill.at(point) {
		return
	}
	j.mu.Lock()
	j.disabled = true
	j.mu.Unlock()
}

// disable stops all further appends (used when a kill point fires outside
// the journal, e.g. after a dispatch).
func (j *Journal) disable() {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.disabled = true
	j.mu.Unlock()
}

// SpecHash fingerprints the schedule-relevant shape of a workflow: name,
// coupling, and each component's name, machine, work hint and file edges.
// Resume refuses a journal whose header hash differs — replaying stage
// indices against a different DAG would corrupt the run.
func SpecHash(spec *Spec, coupling Coupling) [32]byte {
	e := wire.NewEncoder()
	e.String(spec.Name).U8(uint8(coupling)).U32(uint32(len(spec.Components)))
	for _, c := range spec.Components {
		e.String(c.Name).String(c.Machine)
		e.U64(math.Float64bits(c.WorkHint))
		e.StringSlice(c.Inputs)
		e.StringSlice(c.Outputs)
	}
	return sha256.Sum256(e.Bytes())
}

// RunImage is the state a journal replay reconstructs: what the crashed
// coordinator provably knew.
type RunImage struct {
	Workflow string
	SpecHash [32]byte
	Coupling Coupling
	NStages  int
	// States holds each stage's last journaled state (Stage* constants).
	States []uint8
	// Home maps a stage to the machine whose outputs won its speculation
	// race, when that differs from the component's configured machine.
	Home map[int]string
	// Records is how many whole records were applied; Torn reports whether
	// replay stopped at an incomplete trailing frame (a crash mid-append).
	Records int
	Torn    bool
	// CleanLen is the byte length of the clean record prefix — everything
	// before the torn tail. A resuming coordinator must truncate the
	// journal file to CleanLen before appending its own session, or the
	// torn fragment would mask every later record from the next replay.
	CleanLen int
}

// Done counts stages the image proves complete.
func (img *RunImage) Done() int {
	n := 0
	for _, st := range img.States {
		if st == StageDone {
			n++
		}
	}
	return n
}

// ErrNoHeader is returned by Replay when the journal holds no complete
// header record — there is nothing to resume.
var ErrNoHeader = errors.New("workflow: journal has no header record")

// Replay scans journal bytes and reconstructs the run image. A torn tail —
// trailing bytes that do not form a whole CRC-clean frame — ends the scan
// cleanly with Torn set; it is the expected shape of a crash mid-append.
// Structural impossibilities inside CRC-clean records (a stage index past
// the header's count, conflicting headers) are hard errors: that is a
// damaged or mismatched file, not a crash artifact.
func Replay(data []byte) (*RunImage, error) {
	var img *RunImage
	off := 0
	for {
		if len(data)-off < 8 {
			if len(data) != off && img != nil {
				img.Torn = true
			}
			break
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		if n > wire.MaxFrame || len(data)-off-8 < n {
			// An impossible length or a frame cut short: torn tail.
			if img != nil {
				img.Torn = true
			}
			break
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			if img != nil {
				img.Torn = true
			}
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// CRC-clean but undecodable: treat as the torn tail too — a
			// truncated write can end exactly at a stale frame boundary.
			if img != nil {
				img.Torn = true
			}
			break
		}
		off += 8 + n
		if img == nil {
			if rec.kind != recHeader {
				return nil, fmt.Errorf("workflow: journal starts with record kind %d, not a header", rec.kind)
			}
			if rec.format != journalFormat {
				return nil, fmt.Errorf("workflow: journal format %d, this build reads %d", rec.format, journalFormat)
			}
			if rec.nstages > MaxStages {
				return nil, fmt.Errorf("workflow: journal header declares %d stages (max %d)", rec.nstages, MaxStages)
			}
			img = &RunImage{
				Workflow: rec.workflow,
				SpecHash: rec.specHash,
				Coupling: Coupling(rec.coupling),
				NStages:  int(rec.nstages),
				States:   make([]uint8, rec.nstages),
				Home:     make(map[int]string),
				Records:  1,
			}
			continue
		}
		img.Records++
		switch rec.kind {
		case recHeader:
			// A later session's header: must describe the same run.
			if rec.workflow != img.Workflow || rec.specHash != img.SpecHash || int(rec.nstages) != img.NStages {
				return nil, errors.New("workflow: journal holds headers for different runs")
			}
		case recState:
			if int(rec.stage) >= img.NStages {
				return nil, fmt.Errorf("workflow: journal state record for stage %d of %d", rec.stage, img.NStages)
			}
			if rec.state > StageFailed {
				return nil, fmt.Errorf("workflow: journal state record with unknown state %d", rec.state)
			}
			img.States[rec.stage] = rec.state
		case recSpec:
			if int(rec.stage) >= img.NStages {
				return nil, fmt.Errorf("workflow: journal speculation record for stage %d of %d", rec.stage, img.NStages)
			}
			if rec.op == SpecWin {
				img.Home[int(rec.stage)] = rec.machine
			}
		case recSnapshot:
			if len(rec.states) != img.NStages {
				return nil, fmt.Errorf("workflow: journal snapshot covers %d stages of %d", len(rec.states), img.NStages)
			}
			for _, st := range rec.states {
				if st > StageFailed {
					return nil, fmt.Errorf("workflow: journal snapshot with unknown state %d", st)
				}
			}
			copy(img.States, rec.states)
		case recEager:
			// Informational: eager copies are re-derived on resume.
		}
	}
	if img == nil {
		return nil, ErrNoHeader
	}
	img.CleanLen = off
	return img, nil
}

// MemSink is an in-memory Sink with crash semantics for tests: Write lands
// in a buffer, Sync moves the buffer to the persisted prefix, and Crash
// models the machine dying — unsynced bytes are lost, except for an
// arbitrary prefix that "made it to disk" as a torn tail.
type MemSink struct {
	mu        sync.Mutex
	persisted []byte
	buffered  []byte
}

// Write implements Sink.
func (s *MemSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buffered = append(s.buffered, p...)
	return len(p), nil
}

// Sync implements Sink.
func (s *MemSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persisted = append(s.persisted, s.buffered...)
	s.buffered = nil
	return nil
}

// Bytes reports the synced (recoverable) prefix.
func (s *MemSink) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.persisted...)
}

// Buffered reports how many written bytes have not been synced.
func (s *MemSink) Buffered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buffered)
}

// Crash returns what a restarted coordinator would read back: the synced
// bytes plus at most tear bytes of the unsynced buffer (clamped), and
// drops the rest. tear = 0 is a clean crash at the sync horizon.
func (s *MemSink) Crash(tear int) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tear < 0 {
		tear = 0
	}
	if tear > len(s.buffered) {
		tear = len(s.buffered)
	}
	s.persisted = append(s.persisted, s.buffered[:tear]...)
	s.buffered = nil
	return append([]byte(nil), s.persisted...)
}

// Truncate cuts the persisted bytes to n and discards the buffer — what a
// resuming coordinator does with a journal file's torn tail (RunImage.
// CleanLen) before appending its own session, via os.File.Truncate there.
func (s *MemSink) Truncate(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n < len(s.persisted) {
		s.persisted = s.persisted[:n]
	}
	s.buffered = nil
}

// Named coordinator kill points (KillSwitch.Point).
const (
	// KillDispatch kills after the After-th stage dispatch: the coordinator
	// dies with stages mid-run on the grid.
	KillDispatch = "dispatch"
	// KillPreSync kills between appending a stage's done/failed record and
	// syncing it: the stage finished, the journal never learned.
	KillPreSync = "pre-sync"
	// KillEagerCopy kills right after an eager stage-in copy launches.
	KillEagerCopy = "eager-copy"
	// KillSpeculation kills right after a speculative attempt launches.
	KillSpeculation = "speculation"
	// KillRecord kills after the After-th journal append of any kind — the
	// seeded random-crash-point axis.
	KillRecord = "record"
)

// KillSwitch is the chaos harness's coordinator crash: when the named
// point's After-th occurrence is reached, the coordinator stops dispatching
// and journaling. In-flight stage bodies and transfers drain — a dead
// DAGman does not kill jobs already running on remote machines — and Run
// returns ErrCoordinatorKilled.
type KillSwitch struct {
	// Point names the crash site (Kill* constants).
	Point string
	// After fires the switch on the After-th occurrence of Point (0 and 1
	// both mean the first).
	After int

	mu     sync.Mutex
	seen   int
	killed bool
}

// at records one occurrence of point and reports whether the switch fires
// now. Nil-receiver safe.
func (k *KillSwitch) at(point string) bool {
	if k == nil || point != k.Point {
		return false
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.killed {
		return false
	}
	k.seen++
	after := k.After
	if after < 1 {
		after = 1
	}
	if k.seen >= after {
		k.killed = true
		return true
	}
	return false
}

// Killed reports whether the switch has fired.
func (k *KillSwitch) Killed() bool {
	if k == nil {
		return false
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.killed
}

// ErrCoordinatorKilled is returned by Run when a KillSwitch fired: the
// coordinator stopped; the journal (if any) is what survives.
var ErrCoordinatorKilled = errors.New("workflow: coordinator killed")
