package workflow

import (
	"fmt"
)

// Coordinator recovery: a restarted coordinator replays the journal
// (Replay), checks that the workflow it was handed is the one the journal
// describes (the spec hash), and resumes the DAG from the replayed image.
//
// Recovery invariants:
//
//   - A stage whose done record is on disk is never recomputed: its
//     outputs exist on its home machine and consumers re-resolve them
//     through the GNS. The chaos matrix pins this with
//     wf.sched.dispatch.total deltas.
//   - A stage the journal saw running (or whose done record was appended
//     but not synced — the pre-sync crash window) is re-dispatched.
//     Re-dispatch is idempotent: stage-out creates and copy-in truncates,
//     so a half-written output from the first attempt is simply
//     overwritten, and deterministic bodies produce the same bytes.
//   - A speculation win recorded in the journal survives the restart: the
//     winner's machine is the stage's home and consumers are re-pointed
//     at it after Configure rewrites the default entries. A win that was
//     journaled whose stage's done record was lost is rolled back — the
//     stage recomputes on its primary machine, which is safe because the
//     commit claim is deleted and bodies are deterministic.

// Resume validates img against spec and continues the run: done stages
// stay done, everything else is re-derived from the dependency edges and
// re-dispatched. The same Runner configuration that produced the journal
// should be used; Resume appends a fresh session header (and snapshot) to
// r.Journal if one is set, so a file can carry many crash/resume rounds.
//
// The resumed report covers only this session: stages completed before
// the crash keep zero Timings.
func (r *Runner) Resume(spec *Spec, coupling Coupling, img *RunImage) (*Report, error) {
	if img == nil {
		return nil, fmt.Errorf("workflow: Resume needs a replayed journal image")
	}
	if img.NStages != len(spec.Components) {
		return nil, fmt.Errorf("workflow: journal describes %d stages, spec %q has %d",
			img.NStages, spec.Name, len(spec.Components))
	}
	if got := SpecHash(spec, coupling); got != img.SpecHash {
		return nil, fmt.Errorf("workflow: spec hash mismatch: journal was written for a different %q", img.Workflow)
	}
	return r.run(spec, coupling, img)
}

// cleanupResume reconciles the GNS with the replayed image, after
// Configure has rewritten the default coupling entries:
//
//   - done stages whose outputs live on a speculation winner's machine
//     get their consumers re-pointed there (Configure just pointed them
//     back at the primary machine);
//   - non-done stages lose any commit claim and speculation home the
//     crashed session recorded, so their re-run starts from a clean
//     slate and a fresh speculation race can commit.
func (r *Runner) cleanupResume(spec *Spec, img *RunImage) {
	prod, _ := spec.producers()
	cons := spec.consumers()
	for i := range spec.Components {
		comp := &spec.Components[i]
		if img.States[i] == StageDone {
			if h, ok := img.Home[i]; ok && h != comp.Machine {
				repoint(r, spec, prod, cons, i, h)
			}
			continue
		}
		r.GNS.Delete(commitScope(spec), commitKey(comp.Name))
		delete(img.Home, i)
	}
}
