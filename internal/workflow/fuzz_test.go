package workflow

import (
	"bytes"
	"testing"

	"griddles/internal/wire"
)

// fuzzJournalSeed builds a small valid journal: header, a few state and
// speculation records, a snapshot.
func fuzzJournalSeed() []byte {
	var b []byte
	b = append(b, frameBytes(encodeRec(headerRec("fuzz", 3)))...)
	b = append(b, frameBytes(encodeRec(&record{kind: recState, stage: 0, state: StageRunning, attempt: 1}))...)
	b = append(b, frameBytes(encodeRec(&record{kind: recState, stage: 0, state: StageDone, attempt: 1}))...)
	b = append(b, frameBytes(encodeRec(&record{kind: recSpec, op: SpecLaunch, stage: 1, attempt: 2, machine: "brecca"}))...)
	b = append(b, frameBytes(encodeRec(&record{kind: recSpec, op: SpecWin, stage: 1, attempt: 2, machine: "brecca"}))...)
	b = append(b, frameBytes(encodeRec(&record{kind: recEager, op: EagerLaunch, machine: "dione", path: "F.DAT"}))...)
	b = append(b, frameBytes(encodeRec(&record{kind: recSnapshot, states: []uint8{StageDone, StageDone, StageReady}}))...)
	return b
}

// FuzzJournalDecode: Replay never panics on arbitrary bytes, never applies
// a record from past the clean prefix, and the CleanLen it reports is
// self-consistent — replaying exactly the clean prefix reproduces the same
// image with no torn flag. This is the crash-safety contract: a torn tail
// (the normal shape of a crash mid-append) must be indistinguishable from
// truncating at the last whole record.
func FuzzJournalDecode(f *testing.F) {
	seed := fuzzJournalSeed()
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail: last frame cut mid-payload
	f.Add(seed[:5])           // torn header
	flip := append([]byte(nil), seed...)
	flip[len(flip)/2] ^= 0x40 // CRC-bad record mid-file
	f.Add(flip)
	f.Add([]byte{})
	f.Add([]byte("not a journal at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Replay(data)
		if err != nil {
			if img != nil {
				t.Fatal("Replay returned both an image and an error")
			}
			return
		}
		if img.CleanLen < 0 || img.CleanLen > len(data) {
			t.Fatalf("CleanLen %d outside [0,%d]", img.CleanLen, len(data))
		}
		if !img.Torn && img.CleanLen != len(data) {
			t.Fatalf("untorn journal but CleanLen %d != %d", img.CleanLen, len(data))
		}
		again, err := Replay(data[:img.CleanLen])
		if err != nil {
			t.Fatalf("clean prefix failed to replay: %v", err)
		}
		if again.Torn {
			t.Fatal("clean prefix replayed as torn")
		}
		if again.Records != img.Records || !bytes.Equal(again.States, img.States) {
			t.Fatal("clean prefix replays to a different image: a torn record leaked into the state")
		}
		for i, h := range img.Home {
			if again.Home[i] != h {
				t.Fatal("clean prefix replays to a different speculation home")
			}
		}
	})
}

// FuzzJournalRoundTrip: every record the journal can write survives
// encode → decodeRecord unchanged, whatever the field values.
func FuzzJournalRoundTrip(f *testing.F) {
	f.Add(uint8(recHeader), uint32(0), uint8(0), uint32(3), "climate", "brecca", "OUT.DAT", int64(42))
	f.Add(uint8(recState), uint32(7), uint8(StageDone), uint32(1), "", "", "", int64(-1))
	f.Add(uint8(recEager), uint32(0), uint8(EagerAdopt), uint32(0), "", "dione", "F.DAT", int64(0))
	f.Add(uint8(recSpec), uint32(2), uint8(SpecWin), uint32(2), "", "freak", "", int64(1<<40))
	f.Add(uint8(recSnapshot), uint32(0), uint8(0), uint32(0), "\x00\x03\x01", "", "", int64(9))
	f.Fuzz(func(t *testing.T, kind uint8, stage uint32, op uint8, attempt uint32,
		workflow, machine, path string, nanos int64) {
		rec := &record{nanos: nanos}
		switch kind % 5 {
		case 0:
			rec.kind = recHeader
			rec.format = journalFormat
			rec.workflow = workflow
			copy(rec.specHash[:], path)
			rec.nstages = stage
			rec.coupling = op
		case 1:
			rec.kind = recState
			rec.stage = stage
			rec.state = op
			rec.attempt = attempt
		case 2:
			rec.kind = recEager
			rec.op = op
			rec.machine = machine
			rec.path = path
		case 3:
			rec.kind = recSpec
			rec.op = op
			rec.stage = stage
			rec.attempt = attempt
			rec.machine = machine
		case 4:
			rec.kind = recSnapshot
			rec.states = []uint8(workflow)
		}
		enc := encodeRec(rec)
		if len(enc) > wire.MaxFrame {
			t.Skip()
		}
		got, err := decodeRecord(enc)
		if err != nil {
			t.Fatalf("decode of a freshly encoded record failed: %v", err)
		}
		if got.kind != rec.kind || got.nanos != rec.nanos ||
			got.format != rec.format || got.workflow != rec.workflow ||
			got.specHash != rec.specHash || got.nstages != rec.nstages ||
			got.coupling != rec.coupling || got.stage != rec.stage ||
			got.state != rec.state || got.attempt != rec.attempt ||
			got.op != rec.op || got.machine != rec.machine || got.path != rec.path ||
			!bytes.Equal(got.states, rec.states) {
			t.Fatalf("round trip changed the record:\n  in  %+v\n  out %+v", rec, got)
		}
	})
}
