GO ?= go

.PHONY: check fmt vet test race chaos build

## check: gofmt + vet + race-detector tests + the chaos matrix
check: fmt vet race chaos

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/core/...

## chaos: the fault-injection matrix — {IO mechanism} x {fault scenario},
## the no-survivor budget tests, and 50 seeded random fault schedules.
chaos:
	$(GO) test -race -timeout 5m ./internal/chaos/... ./internal/fault/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...
