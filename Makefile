GO ?= go

.PHONY: check fmt vet test race build

## check: gofmt + vet + race-detector tests for the concurrency-heavy packages
check: fmt vet race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/core/...

build:
	$(GO) build ./...

test:
	$(GO) test ./...
