GO ?= go

# Coverage floors: the pre-PR3 baselines for the packages the buffer
# overhaul touches, the PR5 scheduler floor for internal/workflow, the
# PR6 floor for the new internal/objstore backend, and the PR7 floors for
# internal/gns and the new admission/stress packages.
# `make cover` fails when any drops below its floor.
COVER_FLOOR_CORE       ?= 80.3
COVER_FLOOR_GRIDBUFFER ?= 84.7
COVER_FLOOR_WORKFLOW   ?= 92.0
COVER_FLOOR_OBJSTORE   ?= 84.5
COVER_FLOOR_GNS        ?= 87.0
COVER_FLOOR_ADMIT      ?= 92.0
COVER_FLOOR_STRESS     ?= 85.0

# Per-target fuzz budget for the `make fuzz` smoke pass. The checked-in
# seed corpora always replay in full under plain `go test`; this adds a
# short randomized probe on top.
FUZZTIME ?= 5s

.PHONY: check fmt vet test race chaos build cover fuzz bench bench-gate stress stress-smoke

## check: gofmt + vet + race coverage gate + chaos matrix + fuzz smoke +
## bench regression gate + overload stress smoke
check: fmt vet cover chaos fuzz bench-gate stress-smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -shuffle=on ./internal/obs/... ./internal/core/... ./internal/gridftp/...

## cover: race-enabled tests with per-package coverage, gated on the
## pre-PR floors for internal/core, internal/gridbuffer and
## internal/workflow.
cover:
	$(GO) test -race -shuffle=on -coverprofile=cover.out \
		./internal/obs/... ./internal/core/... ./internal/gridbuffer/... \
		./internal/workflow/... ./internal/objstore/... ./internal/gns/... \
		./internal/admit/... ./internal/stress/... \
		| $(GO) run ./cmd/covergate \
		-floor griddles/internal/core=$(COVER_FLOOR_CORE) \
		-floor griddles/internal/gridbuffer=$(COVER_FLOOR_GRIDBUFFER) \
		-floor griddles/internal/workflow=$(COVER_FLOOR_WORKFLOW) \
		-floor griddles/internal/objstore=$(COVER_FLOOR_OBJSTORE) \
		-floor griddles/internal/gns=$(COVER_FLOOR_GNS) \
		-floor griddles/internal/admit=$(COVER_FLOOR_ADMIT) \
		-floor griddles/internal/stress=$(COVER_FLOOR_STRESS)

## chaos: the fault-injection matrix — {IO mechanism} x {fault scenario},
## the no-survivor budget tests, and 50 seeded random fault schedules.
chaos:
	$(GO) test -race -shuffle=on -timeout 5m ./internal/chaos/... ./internal/fault/...

## fuzz: short randomized probe of every fuzz target (the seed corpora in
## testdata/fuzz replay under plain `go test` regardless). `go test -fuzz`
## takes one target per invocation, hence the loop.
fuzz:
	@for tgt in \
		internal/wire:FuzzFrameRoundTrip \
		internal/wire:FuzzReadFrame \
		internal/wire:FuzzDecoderSticky \
		internal/gridbuffer:FuzzDecodePutBatch \
		internal/gridbuffer:FuzzDecodeGetWin \
		internal/gridbuffer:FuzzDecodeOptions \
		internal/wire:FuzzCodecRoundTrip \
		internal/xdr:FuzzTranslateTwiceIdentity \
		internal/xdr:FuzzRecordRoundTrip \
		internal/xdr:FuzzColumnarXDR \
		internal/objstore:FuzzDecodeGetReq \
		internal/objstore:FuzzDecodeListResp \
		internal/objstore:FuzzDecodeStreamHeaders \
		internal/admit:FuzzDecodeShed \
		internal/workflow:FuzzJournalDecode \
		internal/workflow:FuzzJournalRoundTrip \
		internal/gns:FuzzShardLeaseWire ; do \
		pkg=$${tgt%%:*}; fn=$${tgt##*:}; \
		echo "fuzz $$pkg $$fn ($(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$fn$$" -fuzztime $(FUZZTIME) ./$$pkg/ || exit 1; \
	done

## bench: run the benchmark suite once and record it as BENCH_pr10.json.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -timeout 20m . | tee bench.out
	$(GO) run ./cmd/benchgate -parse bench.out -o BENCH_pr10.json

## bench-gate: re-run the suite and fail on regression vs the checked-in
## baseline. Simulated-clock metrics and allocs/op gate at 10%; wall-clock
## metrics are compared and reported but don't gate (pure machine noise at
## -benchtime 1x) — pass -gate-wall to benchgate to enforce them too.
bench-gate: bench
	$(GO) run ./cmd/benchgate BENCH_baseline.json BENCH_pr10.json

## stress: the full ~10k-workflow overload sweep (admission on vs off at
## x1 x2 x4 x8 offered load), merging the curves into BENCH_pr10.json and
## failing if goodput collapses. Run after `make bench` so the parse step
## doesn't clobber the merged curves.
stress:
	$(GO) run ./cmd/stress -o BENCH_pr10.json

## stress-smoke: the scaled-down CI shape of the same sweep — same ladder,
## shorter arrival window, gate only (no JSON record).
stress-smoke:
	$(GO) run ./cmd/stress -smoke

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...
